//! Deterministic parallel execution layer.
//!
//! A small persistent worker pool plus index-partitioned helpers
//! ([`par_for`], [`par_map`], [`par_chunks_mut`]). The contract that the
//! rest of the workspace builds on:
//!
//! **Determinism.** Work is split by *task index*, never by worker. Each
//! task computes a predetermined, disjoint part of the output with exactly
//! the same floating-point operation order as the serial code, so results
//! are bitwise identical at any thread count — including 1, which takes a
//! serial inline path that never touches the pool.
//!
//! **Thread budget.** Resolution order: the thread-local [`with_threads`]
//! override (tests) → the `AUTOMC_THREADS` environment variable (read
//! once) → the process-wide [`configure_threads`] knob (the bench
//! harness's scale config) → available hardware parallelism.
//!
//! **Panics.** A panicking task does not poison the pool: the panic is
//! caught on the worker, the run is drained, and the submitting caller
//! re-panics after all sibling tasks finish. The re-raised panic carries
//! the lowest-indexed failing task's index and original payload message,
//! so callers (and their `catch_unwind` supervisors) see *what* failed.
//!
//! The pool is the one place in the tensor crate that needs `unsafe`: the
//! submitting call blocks until every task of its run has finished, so
//! borrowed task closures are only ever dereferenced while they are alive;
//! workers that arrive late see an exhausted run and never touch the job
//! pointer.

#![allow(unsafe_code)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ------------------------------------------------------------------------
// Thread-count resolution
// ------------------------------------------------------------------------

/// Process-wide knob set by [`configure_threads`] (0 = auto).
static KNOB: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Test override; `usize::MAX` = unset.
    static OVERRIDE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// `AUTOMC_THREADS`, parsed once per process.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("AUTOMC_THREADS").ok().and_then(|s| s.trim().parse().ok())
    })
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Pure thread-budget resolution: override → env → knob → hardware, where
/// 0 (or an unset layer) defers to the next one. Always ≥ 1.
pub fn resolve_threads(
    override_threads: Option<usize>,
    env: Option<usize>,
    knob: usize,
    hardware: usize,
) -> usize {
    let n = override_threads
        .filter(|&n| n > 0)
        .or(env.filter(|&n| n > 0))
        .unwrap_or(knob);
    if n == 0 {
        hardware.max(1)
    } else {
        n
    }
}

/// The thread budget parallel helpers use right now, on this thread.
pub fn current_threads() -> usize {
    let ov = OVERRIDE.with(Cell::get);
    let ov = if ov == usize::MAX { None } else { Some(ov) };
    resolve_threads(ov, env_threads(), KNOB.load(Ordering::Relaxed), hardware_threads())
}

/// Set the process-wide thread knob (0 = auto). `AUTOMC_THREADS` still
/// takes precedence, so a user can override a configured experiment.
pub fn configure_threads(n: usize) {
    KNOB.store(n, Ordering::Relaxed);
}

/// Run `f` with the thread budget forced to `n` on this thread (0 = auto).
/// Overrides both the env var and the knob — intended for tests.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(n));
    let _restore = Restore(prev);
    f()
}

// ------------------------------------------------------------------------
// The pool
// ------------------------------------------------------------------------

/// Type-erased borrowed task closure. Soundness: `run_tasks` does not
/// return until every task index has been claimed *and executed*, so
/// `data` outlives every dereference; late workers observe
/// `next >= total` and never touch it.
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// One submitted batch of `total` tasks.
struct RunState {
    job: Job,
    next: AtomicUsize,
    total: usize,
    /// Tasks not yet finished; the finisher of the last one flags `done`.
    pending: AtomicUsize,
    panicked: AtomicBool,
    /// `(task index, payload message)` of the lowest-indexed panicking
    /// task, kept so the submitting caller can re-raise something more
    /// actionable than "a task panicked somewhere".
    panic_info: Mutex<Option<(usize, String)>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// Render a caught panic payload as text. Panics carry `&str` or `String`
/// payloads in practice; anything else is reported by type only.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

struct Pool {
    queue: Mutex<VecDeque<Arc<RunState>>>,
    queue_cv: Condvar,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

/// Make sure at least `want` detached workers exist (daemon threads; the
/// OS reclaims them at process exit).
fn ensure_workers(want: usize) {
    let p = pool();
    let mut n = p.spawned.lock().unwrap();
    while *n < want {
        let name = format!("automc-par-{}", *n);
        std::thread::Builder::new()
            .name(name)
            .spawn(|| worker_loop(pool()))
            .expect("spawn pool worker");
        *n += 1;
    }
}

fn worker_loop(p: &'static Pool) {
    loop {
        let run = {
            let mut q = p.queue.lock().unwrap();
            loop {
                if let Some(run) = q.front() {
                    break Arc::clone(run);
                }
                q = p.queue_cv.wait(q).unwrap();
            }
        };
        execute_tasks(&run);
        retire(p, &run);
    }
}

/// Claim and run task indices until the run is exhausted.
fn execute_tasks(run: &RunState) {
    loop {
        let i = run.next.fetch_add(1, Ordering::Relaxed);
        if i >= run.total {
            return;
        }
        let job = &run.job;
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, i) }));
        if let Err(payload) = outcome {
            let mut info = run.panic_info.lock().unwrap();
            // Tasks may fail on any worker in any order; keep the
            // lowest-indexed failure so the re-raised message is stable.
            if info.as_ref().map_or(true, |(first, _)| i < *first) {
                *info = Some((i, payload_message(payload.as_ref())));
            }
            drop(info);
            run.panicked.store(true, Ordering::Release);
        }
        // The Release half of this RMW publishes the task's output writes;
        // the chain of RMWs hands them to whoever observes pending == 0.
        if run.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = run.done.lock().unwrap();
            *done = true;
            run.done_cv.notify_all();
        }
    }
}

/// Drop an exhausted run from the queue so workers stop picking it up.
fn retire(p: &Pool, run: &Arc<RunState>) {
    if run.next.load(Ordering::Relaxed) >= run.total {
        let mut q = p.queue.lock().unwrap();
        if let Some(pos) = q.iter().position(|r| Arc::ptr_eq(r, run)) {
            q.remove(pos);
        }
    }
}

/// Run `total` tasks on the pool with `threads` as the budget hint. The
/// caller participates (so a pool worker submitting a nested run cannot
/// deadlock) and blocks until every task has finished.
fn run_tasks(job: Job, total: usize, threads: usize) {
    ensure_workers(threads.saturating_sub(1));
    let run = Arc::new(RunState {
        job,
        next: AtomicUsize::new(0),
        total,
        pending: AtomicUsize::new(total),
        panicked: AtomicBool::new(false),
        panic_info: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    let p = pool();
    {
        let mut q = p.queue.lock().unwrap();
        q.push_back(Arc::clone(&run));
    }
    p.queue_cv.notify_all();
    execute_tasks(&run);
    retire(p, &run);
    let mut done = run.done.lock().unwrap();
    while !*done {
        done = run.done_cv.wait(done).unwrap();
    }
    drop(done);
    if run.panicked.load(Ordering::Acquire) {
        let (index, msg) = run
            .panic_info
            .lock()
            .unwrap()
            .take()
            .unwrap_or((usize::MAX, "<missing panic payload>".to_string()));
        panic!("parallel task {index} panicked: {msg}");
    }
}

// ------------------------------------------------------------------------
// Public helpers
// ------------------------------------------------------------------------

/// Run `f(0), …, f(tasks-1)`, possibly concurrently. Serial (in index
/// order, pool untouched) when the thread budget is 1 or there is at most
/// one task. `f` must be safe to call concurrently for distinct indices.
pub fn par_for<F>(tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = current_threads();
    if threads <= 1 || tasks <= 1 {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    unsafe fn call_erased<F: Fn(usize)>(data: *const (), i: usize) {
        unsafe { (*(data as *const F))(i) }
    }
    let job = Job {
        data: (&raw const f).cast(),
        call: call_erased::<F>,
    };
    run_tasks(job, tasks, threads);
}

/// `(0..tasks).map(f).collect()`, computed in parallel; output order is
/// by index regardless of scheduling.
pub fn par_map<T, F>(tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(tasks, || None);
    let base = SendPtr(out.as_mut_ptr());
    par_for(tasks, move |i| {
        // Disjoint per index: each task writes only slot i.
        unsafe { *base.get().add(i) = Some(f(i)) };
    });
    out.into_iter().map(|v| v.expect("task filled its slot")).collect()
}

/// Split `data` into consecutive chunks of `chunk_len` (the last may be
/// short) and run `f(chunk_index, chunk)` for each, possibly concurrently.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = data.len();
    let tasks = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    par_for(tasks, move |i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // Chunks are disjoint by construction.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, chunk);
    });
}

/// Like [`par_chunks_mut`], but also collects each task's return value,
/// ordered by chunk index. Lets a kernel write a disjoint output chunk
/// *and* hand back a per-task contribution (e.g. a weight-gradient term)
/// for an ordered serial reduction afterwards.
pub fn par_chunks_mut_map<T, R, F>(data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = data.len();
    let tasks = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    par_map(tasks, move |i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // Chunks are disjoint by construction.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, chunk)
    })
}

/// Partition *two* slices by the same task index and run
/// `f(i, chunk_a, chunk_b)` for each, possibly concurrently. Both slices
/// are cut into consecutive chunks (`a_chunk` / `b_chunk` elements, last
/// chunks may be short) and must yield the same task count. Lets a kernel
/// write a disjoint output chunk while *also* owning a disjoint scratch
/// chunk (e.g. conv writing its output item and its im2col column slab)
/// without allocating per task.
pub fn par_chunks_mut2<T, U, F>(a: &mut [T], a_chunk: usize, b: &mut [U], b_chunk: usize, f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    assert!(a_chunk > 0 && b_chunk > 0, "chunk lengths must be positive");
    let (a_len, b_len) = (a.len(), b.len());
    let tasks = a_len.div_ceil(a_chunk);
    assert_eq!(
        tasks,
        b_len.div_ceil(b_chunk),
        "par_chunks_mut2: slices disagree on task count"
    );
    let base_a = SendPtr(a.as_mut_ptr());
    let base_b = SendPtr(b.as_mut_ptr());
    par_for(tasks, move |i| {
        let (sa, ea) = (i * a_chunk, (i * a_chunk + a_chunk).min(a_len));
        let (sb, eb) = (i * b_chunk, (i * b_chunk + b_chunk).min(b_len));
        // Chunks are disjoint by construction in both slices.
        let ca = unsafe { std::slice::from_raw_parts_mut(base_a.get().add(sa), ea - sa) };
        let cb = unsafe { std::slice::from_raw_parts_mut(base_b.get().add(sb), eb - sb) };
        f(i, ca, cb);
    });
}

/// Raw pointer wrapper that may cross threads; all uses above write
/// disjoint regions per task index. Accessed via [`SendPtr::get`] so
/// closures capture the `Sync` wrapper, not the bare pointer field.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Even split of `0..n` into at most `parts` contiguous ranges. The split
/// depends only on `(n, parts)` — never on scheduling — so partitioned
/// kernels stay deterministic.
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn resolution_precedence() {
        // override > env > knob > hardware; zeros defer.
        assert_eq!(resolve_threads(Some(3), Some(5), 7, 9), 3);
        assert_eq!(resolve_threads(None, Some(5), 7, 9), 5);
        assert_eq!(resolve_threads(None, None, 7, 9), 7);
        assert_eq!(resolve_threads(None, None, 0, 9), 9);
        assert_eq!(resolve_threads(Some(0), Some(0), 0, 9), 9);
        assert_eq!(resolve_threads(None, None, 0, 0), 1);
    }

    #[test]
    fn with_threads_scopes_the_override() {
        let outside = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(2, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outside);
    }

    #[test]
    fn par_for_runs_every_index_once() {
        for threads in [1, 2, 4] {
            with_threads(threads, || {
                let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
                par_for(97, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 2, 4] {
            let out = with_threads(threads, || par_map(33, |i| i * i));
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_mut_covers_disjointly() {
        for threads in [1, 3] {
            with_threads(threads, || {
                let mut data = vec![0u32; 103];
                par_chunks_mut(&mut data, 10, |ci, chunk| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (ci * 10 + k) as u32 + 1;
                    }
                });
                assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
            });
        }
    }

    #[test]
    fn par_chunks_mut_map_collects_in_index_order() {
        for threads in [1, 4] {
            with_threads(threads, || {
                let mut data = vec![1u32; 25];
                let sums = par_chunks_mut_map(&mut data, 4, |ci, chunk| {
                    for v in chunk.iter_mut() {
                        *v += ci as u32;
                    }
                    chunk.iter().sum::<u32>()
                });
                assert_eq!(sums.len(), 7);
                let expect: Vec<u32> =
                    (0..7).map(|ci| (ci + 1) * if ci == 6 { 1 } else { 4 }).collect();
                assert_eq!(sums, expect);
            });
        }
    }

    #[test]
    fn par_chunks_mut2_pairs_chunks_by_index() {
        for threads in [1, 4] {
            with_threads(threads, || {
                let mut out = vec![0u32; 12];
                let mut scratch = vec![0u32; 18];
                par_chunks_mut2(&mut out, 4, &mut scratch, 6, |ci, o, s| {
                    assert_eq!(o.len(), 4);
                    assert_eq!(s.len(), 6);
                    for v in s.iter_mut() {
                        *v = ci as u32 + 1;
                    }
                    for v in o.iter_mut() {
                        *v = s.iter().sum();
                    }
                });
                assert_eq!(out, vec![6, 6, 6, 6, 12, 12, 12, 12, 18, 18, 18, 18]);
            });
        }
    }

    #[test]
    #[should_panic(expected = "task count")]
    fn par_chunks_mut2_rejects_mismatched_partitions() {
        let mut a = vec![0u8; 10];
        let mut b = vec![0u8; 10];
        par_chunks_mut2(&mut a, 2, &mut b, 4, |_, _, _| {});
    }

    #[test]
    fn nested_runs_complete() {
        with_threads(4, || {
            let total = AtomicU64::new(0);
            par_for(6, |i| {
                let inner: u64 = par_map(5, |j| (i * 5 + j) as u64).iter().sum();
                total.fetch_add(inner, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), (0..30).sum::<u64>());
        });
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        with_threads(4, || {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                par_for(8, |i| {
                    if i == 5 {
                        panic!("task 5 boom");
                    }
                });
            }));
            assert!(result.is_err());
            // Pool still functional afterwards.
            assert_eq!(par_map(4, |i| i).len(), 4);
        });
    }

    #[test]
    fn repanic_carries_first_failing_index_and_payload() {
        for threads in [1, 4] {
            with_threads(threads, || {
                let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    par_for(8, |i| {
                        if i == 3 {
                            panic!("boom at {i}");
                        }
                        if i == 6 {
                            panic!("boom at {i}");
                        }
                    });
                }))
                .unwrap_err();
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<opaque>");
                // With 1 thread task 3 fires first and the inline panic
                // propagates as-is; on the pool the re-raise must name
                // the lowest failing index and quote its payload.
                assert!(msg.contains("boom at 3"), "got: {msg}");
                if threads > 1 {
                    assert!(msg.contains("parallel task 3"), "got: {msg}");
                }
                // Pool still functional afterwards.
                assert_eq!(par_map(4, |i| i).len(), 4);
            });
        }
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for (n, parts) in [(10, 3), (3, 10), (0, 4), (16, 4), (1, 1), (7, 7)] {
            let ranges = split_ranges(n, parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n, "ranges must tile 0..{n}");
            if n > 0 {
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "split of {n} into {parts} is uneven: {sizes:?}");
            }
        }
    }

    #[test]
    fn serial_budget_runs_inline_in_index_order() {
        with_threads(1, || {
            let order = Mutex::new(Vec::new());
            let caller = std::thread::current().id();
            par_for(5, |i| {
                assert_eq!(std::thread::current().id(), caller, "1 thread must stay inline");
                order.lock().unwrap().push(i);
            });
            assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        });
    }
}
