use crate::im2col::{col2im_into, im2col_into, ConvGeom};
use crate::matmul::{gemm_a_bt_slices, gemm_at_b_slices, gemm_slices, Epilogue};
use crate::nn::Layer;
use crate::optim::Param;
use crate::{init, par, Rng, Tensor};

/// 2-D convolution over NCHW input.
///
/// The kernel is stored *matricised* as `weight: [out_c, in_c·kh·kw]` — the
/// exact shape that filter pruning (row removal), channel pruning (column
/// group removal) and low-rank factorisation (SVD of this matrix) operate
/// on, so compression methods edit it without reshaping gymnastics.
#[derive(Clone)]
pub struct Conv2d {
    /// Matricised kernel `[out_c, in_c·kh·kw]`.
    pub weight: Tensor,
    /// Optional bias `[out_c]` (absent when a batch-norm follows).
    pub bias: Option<Tensor>,
    /// Accumulated kernel gradient.
    pub grad_weight: Tensor,
    /// Accumulated bias gradient (zero-sized if no bias).
    pub grad_bias: Tensor,
    in_c: usize,
    out_c: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    /// Flat im2col column buffer from the last forward (`n` slabs of
    /// `col_rows·oh·ow`), reused across training steps so steady-state
    /// forward/backward passes do not allocate.
    cols_buf: Vec<f32>,
    cached_in_dims: [usize; 4],
}

impl Conv2d {
    /// Kaiming-initialised convolution.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_c: usize,
        out_c: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = in_c * kh * kw;
        Conv2d {
            weight: init::kaiming_normal(&[out_c, fan_in], fan_in, rng),
            bias: bias.then(|| Tensor::zeros(&[out_c])),
            grad_weight: Tensor::zeros(&[out_c, fan_in]),
            grad_bias: Tensor::zeros(&[if bias { out_c } else { 0 }]),
            in_c,
            out_c,
            kh,
            kw,
            stride,
            pad,
            cols_buf: Vec::new(),
            cached_in_dims: [0; 4],
        }
    }

    /// Build from an explicit matricised kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn from_weight(
        weight: Tensor,
        bias: Option<Tensor>,
        in_c: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        let out_c = weight.dims()[0];
        debug_assert_eq!(weight.dims()[1], in_c * kh * kw);
        let gw = Tensor::zeros(weight.dims());
        let gb = Tensor::zeros(&[bias.as_ref().map_or(0, |b| b.numel())]);
        Conv2d {
            weight,
            bias,
            grad_weight: gw,
            grad_bias: gb,
            in_c,
            out_c,
            kh,
            kw,
            stride,
            pad,
            cols_buf: Vec::new(),
            cached_in_dims: [0; 4],
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Output channel (filter) count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Kernel height/width.
    pub fn kernel(&self) -> (usize, usize) {
        (self.kh, self.kw)
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    pub fn padding(&self) -> usize {
        self.pad
    }

    /// FLOPs (multiply–accumulates) for one input of `[in_h, in_w]`.
    pub fn flops(&self, in_h: usize, in_w: usize) -> u64 {
        let g = self.geom(in_h, in_w);
        (self.out_c * self.in_c * self.kh * self.kw) as u64 * (g.out_h() * g.out_w()) as u64
    }

    fn geom(&self, in_h: usize, in_w: usize) -> ConvGeom {
        ConvGeom {
            in_c: self.in_c,
            in_h,
            in_w,
            kh: self.kh,
            kw: self.kw,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// Keep only the listed output filters (sorted indices). Grad state and
    /// caches are reset.
    pub fn keep_filters(&mut self, keep: &[usize]) {
        debug_assert!(keep.iter().all(|&i| i < self.out_c));
        let cols = self.weight.dims()[1];
        let mut w = Tensor::zeros(&[keep.len(), cols]);
        for (ni, &i) in keep.iter().enumerate() {
            w.row_mut(ni).copy_from_slice(self.weight.row(i));
        }
        self.weight = w;
        if let Some(b) = &self.bias {
            let nb: Vec<f32> = keep.iter().map(|&i| b.data()[i]).collect();
            self.bias = Some(Tensor::from_slice(&[keep.len()], &nb));
        }
        self.out_c = keep.len();
        self.reset_grads();
    }

    /// Keep only the listed input channels (sorted indices): removes the
    /// corresponding `kh·kw` column blocks of the kernel matrix.
    pub fn keep_in_channels(&mut self, keep: &[usize]) {
        debug_assert!(keep.iter().all(|&i| i < self.in_c));
        let k2 = self.kh * self.kw;
        let mut w = Tensor::zeros(&[self.out_c, keep.len() * k2]);
        for o in 0..self.out_c {
            let src = self.weight.row(o);
            let dst = w.row_mut(o);
            for (nc, &c) in keep.iter().enumerate() {
                dst[nc * k2..(nc + 1) * k2].copy_from_slice(&src[c * k2..(c + 1) * k2]);
            }
        }
        self.weight = w;
        self.in_c = keep.len();
        self.reset_grads();
    }

    /// Reset gradient buffers to match current weight shapes.
    pub fn reset_grads(&mut self) {
        self.grad_weight = Tensor::zeros(self.weight.dims());
        self.grad_bias = Tensor::zeros(&[self.bias.as_ref().map_or(0, |b| b.numel())]);
        self.cols_buf.clear();
    }

    /// Eval-mode forward with a folded batch-norm applied in the
    /// post-matmul write: `out[c] = scale[c]·conv(x)[c] + shift[c]`,
    /// optionally clamped at zero (`relu`). The conv bias, if any, is
    /// folded into the shift, so the whole Conv→BN(→ReLU) block is one
    /// GEMM with a fused epilogue — no separate normalisation pass and no
    /// intermediate activation tensor. See [`BatchNorm2d::fold_eval`].
    ///
    /// [`BatchNorm2d::fold_eval`]: crate::nn::BatchNorm2d::fold_eval
    pub fn forward_fused_bn(
        &mut self,
        x: &Tensor,
        scale: &[f32],
        shift: &[f32],
        relu: bool,
    ) -> Tensor {
        debug_assert_eq!(scale.len(), self.out_c);
        debug_assert_eq!(shift.len(), self.out_c);
        self.forward_with(x, Some((scale, shift, relu)))
    }

    /// Shared forward driver: lower each batch item with im2col into its
    /// slab of the reused flat column buffer, then one GEMM per item with
    /// the requested write epilogue. Batch items are independent tasks
    /// writing disjoint output and column slabs, with identical per-item
    /// math at any thread count.
    fn forward_with(&mut self, x: &Tensor, fused: Option<(&[f32], &[f32], bool)>) -> Tensor {
        let d = x.dims();
        debug_assert_eq!(d.len(), 4, "conv input must be NCHW");
        debug_assert_eq!(d[1], self.in_c, "conv: channel mismatch");
        let (n, in_h, in_w) = (d[0], d[2], d[3]);
        let g = self.geom(in_h, in_w);
        let (oh, ow) = (g.out_h(), g.out_w());
        let col_rows = self.in_c * self.kh * self.kw;
        let col_len = col_rows * oh * ow;
        self.cached_in_dims = [n, self.in_c, in_h, in_w];
        let mut out = Tensor::zeros(&[n, self.out_c, oh, ow]);
        let item = self.in_c * in_h * in_w;
        let out_item = self.out_c * oh * ow;
        // Reused across steps: resize keeps capacity once shapes settle.
        self.cols_buf.resize(n * col_len, 0.0);
        if n == 0 {
            return out;
        }
        // Fold the conv bias into the batch-norm shift so the epilogue
        // stays a single scale/shift per output channel.
        let shift_eff: Vec<f32> = match (fused, &self.bias) {
            (Some((scale, shift, _)), Some(b)) => shift
                .iter()
                .zip(scale.iter())
                .zip(b.data())
                .map(|((&t, &s), &bv)| t + s * bv)
                .collect(),
            (Some((_, shift, _)), None) => shift.to_vec(),
            (None, _) => Vec::new(),
        };
        let epi = match (fused, &self.bias) {
            (Some((scale, _, relu)), _) => {
                Epilogue::ScaleShift { scale, shift: &shift_eff, relu }
            }
            (None, Some(b)) => Epilogue::Bias(b.data()),
            (None, None) => Epilogue::Store,
        };
        let xd = x.data();
        if out_item == 0 || col_len == 0 {
            // Degenerate shapes: no GEMM to run. Lower the input anyway
            // (backward still reads the columns) and finish the zero
            // output rows through the epilogue (bias / shift broadcast).
            for b in 0..n {
                im2col_into(
                    &xd[b * item..(b + 1) * item],
                    g,
                    &mut self.cols_buf[b * col_len..(b + 1) * col_len],
                );
                let od = out.data_mut();
                for c in 0..self.out_c {
                    let base = b * out_item + c * oh * ow;
                    epi.finish_row(c, &mut od[base..base + oh * ow]);
                }
            }
            return out;
        }
        let weight = self.weight.data();
        let (out_c, ohw) = (self.out_c, oh * ow);
        par::par_chunks_mut2(
            out.data_mut(),
            out_item,
            &mut self.cols_buf,
            col_len,
            |b, dst, cols| {
                im2col_into(&xd[b * item..(b + 1) * item], g, cols);
                gemm_slices(weight, cols, dst, out_c, col_rows, ohw, epi);
            },
        );
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.forward_with(x, None)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, in_c, in_h, in_w] = self.cached_in_dims;
        debug_assert!(n > 0, "Conv2d::backward before forward");
        let g = self.geom(in_h, in_w);
        let (oh, ow) = (g.out_h(), g.out_w());
        debug_assert_eq!(grad_out.dims(), &[n, self.out_c, oh, ow]);
        let col_rows = in_c * self.kh * self.kw;
        let col_len = col_rows * oh * ow;
        let mut grad_in = Tensor::zeros(&[n, in_c, in_h, in_w]);
        let out_item = self.out_c * oh * ow;
        let in_item = in_c * in_h * in_w;
        // Per-item contributions in parallel: each task reads its slab of
        // the retained column buffer, scatters into its disjoint grad_in
        // chunk, and returns its (dW, db) terms. Folding those serially in
        // ascending batch order reproduces the serial accumulation
        // bitwise. The GEMMs run serially inside each task — batch-level
        // parallelism is already in effect.
        let weight = self.weight.data();
        let cols_buf = &self.cols_buf;
        let god = grad_out.data();
        let (out_c, ohw, has_bias) = (self.out_c, oh * ow, self.bias.is_some());
        let contribs: Vec<(Vec<f32>, Vec<f32>)> =
            par::par_chunks_mut_map(grad_in.data_mut(), in_item, |b, gi_chunk| {
                let gout = &god[b * out_item..(b + 1) * out_item];
                let cols = &cols_buf[b * col_len..(b + 1) * col_len];
                // dW_b = gout · colsᵀ
                let mut gw = vec![0.0f32; out_c * col_rows];
                gemm_a_bt_slices(gout, cols, &mut gw, out_c, ohw, col_rows);
                let gb: Vec<f32> = if has_bias {
                    (0..out_c).map(|c| gout[c * ohw..(c + 1) * ohw].iter().sum()).collect()
                } else {
                    Vec::new()
                };
                // d cols = Wᵀ · gout, then scatter back to image space.
                let mut gcols = vec![0.0f32; col_len];
                gemm_at_b_slices(weight, gout, &mut gcols, out_c, col_rows, ohw);
                col2im_into(&gcols, g, gi_chunk);
                (gw, gb)
            });
        for (gw, gb) in contribs {
            for (d, s) in self.grad_weight.data_mut().iter_mut().zip(&gw) {
                *d += s;
            }
            for (c, v) in gb.into_iter().enumerate() {
                self.grad_bias.data_mut()[c] += v;
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        let mut v = vec![Param {
            value: &mut self.weight,
            grad: &mut self.grad_weight,
            weight_decay: true,
        }];
        if let Some(b) = &mut self.bias {
            v.push(Param { value: b, grad: &mut self.grad_bias, weight_decay: false });
        }
        v
    }

    fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.as_ref().map_or(0, |b| b.numel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;
    use crate::rng_from_seed;

    #[test]
    fn output_shape_stride_and_pad() {
        let mut rng = rng_from_seed(50);
        let mut c = Conv2d::new(3, 8, 3, 3, 1, 1, false, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        assert_eq!(c.forward(&x, true).dims(), &[2, 8, 8, 8]);
        let mut c2 = Conv2d::new(3, 8, 3, 3, 2, 1, false, &mut rng);
        assert_eq!(c2.forward(&x, true).dims(), &[2, 8, 4, 4]);
        let mut c3 = Conv2d::new(3, 4, 1, 1, 1, 0, true, &mut rng);
        assert_eq!(c3.forward(&x, true).dims(), &[2, 4, 8, 8]);
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 conv with identity weights reproduces the input channels.
        let weight = Tensor::from_slice(&[2, 2], &[1., 0., 0., 1.]);
        let mut c = Conv2d::from_weight(weight, None, 2, 1, 1, 1, 0);
        let mut rng = rng_from_seed(51);
        let x = Tensor::randn(&[1, 2, 3, 3], 1.0, &mut rng);
        let y = c.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn gradcheck_conv() {
        let mut rng = rng_from_seed(52);
        let mut c = Conv2d::new(2, 3, 3, 3, 1, 1, true, &mut rng);
        let x = Tensor::randn(&[2, 2, 5, 5], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut c, &x, 0.05);
        gradcheck::check_param_grads(&mut c, &x, 0.05);
    }

    #[test]
    fn gradcheck_strided_conv() {
        let mut rng = rng_from_seed(53);
        let mut c = Conv2d::new(2, 2, 3, 3, 2, 1, false, &mut rng);
        let x = Tensor::randn(&[1, 2, 6, 6], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut c, &x, 0.05);
        gradcheck::check_param_grads(&mut c, &x, 0.05);
    }

    #[test]
    fn keep_filters_prunes_rows() {
        let mut rng = rng_from_seed(54);
        let mut c = Conv2d::new(2, 4, 3, 3, 1, 1, true, &mut rng);
        let before = c.weight.clone();
        c.keep_filters(&[1, 3]);
        assert_eq!(c.out_channels(), 2);
        assert_eq!(c.weight.row(0), before.row(1));
        assert_eq!(c.weight.row(1), before.row(3));
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        assert_eq!(c.forward(&x, true).dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn keep_in_channels_prunes_column_blocks() {
        let mut rng = rng_from_seed(55);
        let mut c = Conv2d::new(3, 2, 3, 3, 1, 1, false, &mut rng);
        let before = c.weight.clone();
        c.keep_in_channels(&[0, 2]);
        assert_eq!(c.in_channels(), 2);
        assert_eq!(&c.weight.row(0)[0..9], &before.row(0)[0..9]);
        assert_eq!(&c.weight.row(0)[9..18], &before.row(0)[18..27]);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        assert_eq!(c.forward(&x, true).dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn pruned_then_full_forward_agree_on_kept_channels() {
        // Pruning filters then running forward == running forward then
        // selecting the kept output channels.
        let mut rng = rng_from_seed(56);
        let mut full = Conv2d::new(2, 4, 3, 3, 1, 1, false, &mut rng);
        let mut pruned = Conv2d::from_weight(
            full.weight.clone(),
            None,
            2,
            3,
            3,
            1,
            1,
        );
        pruned.keep_filters(&[0, 2]);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y_full = full.forward(&x, true);
        let y_pruned = pruned.forward(&x, true);
        let hw = 16;
        assert_eq!(&y_pruned.data()[0..hw], &y_full.data()[0..hw]);
        assert_eq!(&y_pruned.data()[hw..2 * hw], &y_full.data()[2 * hw..3 * hw]);
    }

    #[test]
    fn flops_formula() {
        let mut rng = rng_from_seed(57);
        let c = Conv2d::new(4, 8, 3, 3, 1, 1, false, &mut rng);
        assert_eq!(c.flops(8, 8), (8 * 4 * 9) as u64 * 64);
        let s = Conv2d::new(4, 8, 3, 3, 2, 1, false, &mut rng);
        assert_eq!(s.flops(8, 8), (8 * 4 * 9) as u64 * 16);
    }
}
