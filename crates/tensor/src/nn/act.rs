use crate::nn::Layer;
use crate::Tensor;

/// Rectified linear unit.
#[derive(Default)]
#[derive(Clone)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("Relu::backward before forward");
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }
}

/// Hyperbolic tangent.
#[derive(Default)]
#[derive(Clone)]
pub struct Tanh {
    cached_out: Option<Tensor>,
}

impl Tanh {
    /// New Tanh.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let out = x.map(f32::tanh);
        self.cached_out = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self.cached_out.as_ref().expect("Tanh::backward before forward");
        grad_out.zip(out, |g, y| g * (1.0 - y * y))
    }
}

/// Logistic sigmoid.
#[derive(Default)]
#[derive(Clone)]
pub struct Sigmoid {
    cached_out: Option<Tensor>,
}

impl Sigmoid {
    /// New Sigmoid.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let out = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.cached_out = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self
            .cached_out
            .as_ref()
            .expect("Sigmoid::backward before forward");
        grad_out.zip(out, |g, y| g * y * (1.0 - y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;
    use crate::rng_from_seed;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[4], &[-1., 0., 2., -3.]);
        assert_eq!(r.forward(&x, true).data(), &[0., 0., 2., 0.]);
        let g = r.backward(&Tensor::ones(&[4]));
        assert_eq!(g.data(), &[0., 0., 1., 0.]);
    }

    #[test]
    fn tanh_range_and_gradcheck() {
        let mut rng = rng_from_seed(70);
        let mut t = Tanh::new();
        let x = Tensor::randn(&[3, 4], 2.0, &mut rng);
        let y = t.forward(&x, true);
        assert!(y.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        gradcheck::check_input_grad(&mut t, &x, 0.05);
    }

    #[test]
    fn sigmoid_range_and_gradcheck() {
        let mut rng = rng_from_seed(71);
        let mut s = Sigmoid::new();
        let x = Tensor::randn(&[3, 4], 2.0, &mut rng);
        let y = s.forward(&x, true);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        gradcheck::check_input_grad(&mut s, &x, 0.05);
    }

    #[test]
    fn sigmoid_midpoint() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::zeros(&[1]), true);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
    }
}
