use crate::nn::Layer;
use crate::{par, Tensor};

/// 2×2 max pooling with stride 2 (VGG downsampling).
///
/// Odd trailing rows/columns are dropped, matching the usual floor
/// behaviour.
#[derive(Default)]
#[derive(Clone)]
pub struct MaxPool2 {
    argmax: Vec<usize>,
    in_dims: [usize; 4],
}

impl MaxPool2 {
    /// New pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let d = x.dims();
        debug_assert_eq!(d.len(), 4);
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let (oh, ow) = (h / 2, w / 2);
        self.in_dims = [n, c, h, w];
        let out_item = c * oh * ow;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        if n == 0 || out_item == 0 {
            self.argmax = Vec::new();
            return out;
        }
        // One task per batch item: disjoint output chunk, argmax chunk
        // returned and reassembled in batch order.
        let xd = x.data();
        let argmax_chunks: Vec<Vec<usize>> =
            par::par_chunks_mut_map(out.data_mut(), out_item, |b, out_chunk| {
                let mut am = vec![0usize; out_item];
                let mut oi = 0usize;
                for ch in 0..c {
                    let plane = &xd[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_idx = 0usize;
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let iy = oy * 2 + dy;
                                    let ix = ox * 2 + dx;
                                    let idx = iy * w + ix;
                                    if plane[idx] > best {
                                        best = plane[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                            out_chunk[oi] = best;
                            am[oi] = (b * c + ch) * h * w + best_idx;
                            oi += 1;
                        }
                    }
                }
                am
            });
        self.argmax = argmax_chunks.concat();
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, c, h, w] = self.in_dims;
        debug_assert!(n > 0, "MaxPool2::backward before forward");
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let in_item = c * h * w;
        let out_item = self.argmax.len() / n.max(1);
        if in_item == 0 || out_item == 0 {
            return grad_in;
        }
        // Each argmax of batch item b points inside item b's input chunk,
        // so the scatter partitions cleanly by batch item.
        let (god, argmax) = (grad_out.data(), &self.argmax);
        par::par_chunks_mut(grad_in.data_mut(), in_item, |b, gi_chunk| {
            for oi in b * out_item..(b + 1) * out_item {
                gi_chunk[argmax[oi] - b * in_item] += god[oi];
            }
        });
        grad_in
    }
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
#[derive(Default)]
#[derive(Clone)]
pub struct GlobalAvgPool {
    in_dims: [usize; 4],
}

impl GlobalAvgPool {
    /// New pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let d = x.dims();
        debug_assert_eq!(d.len(), 4);
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        self.in_dims = [n, c, h, w];
        let plane = (h * w).max(1) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        if n == 0 || c == 0 {
            return out;
        }
        let xd = x.data();
        par::par_chunks_mut(out.data_mut(), c, |b, out_chunk| {
            for (ch, o) in out_chunk.iter_mut().enumerate() {
                let base = (b * c + ch) * h * w;
                let s: f32 = xd[base..base + h * w].iter().sum();
                *o = s / plane;
            }
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, c, h, w] = self.in_dims;
        debug_assert!(n > 0, "GlobalAvgPool::backward before forward");
        let plane = (h * w).max(1) as f32;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let in_item = c * h * w;
        if in_item == 0 {
            return grad_in;
        }
        let god = grad_out.data();
        par::par_chunks_mut(grad_in.data_mut(), in_item, |b, gi_chunk| {
            for ch in 0..c {
                let g = god[b * c + ch] / plane;
                gi_chunk[ch * h * w..(ch + 1) * h * w].fill(g);
            }
        });
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;
    use crate::rng_from_seed;

    #[test]
    fn maxpool_picks_maxima() {
        let x = Tensor::from_slice(
            &[1, 1, 4, 4],
            &[1., 2., 5., 6., 3., 4., 7., 8., 9., 10., 13., 14., 11., 12., 15., 16.],
        );
        let mut p = MaxPool2::new();
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_slice(&[1, 1, 2, 2], &[1., 9., 3., 4.]);
        let mut p = MaxPool2::new();
        p.forward(&x, true);
        let g = p.backward(&Tensor::from_slice(&[1, 1, 1, 1], &[5.0]));
        assert_eq!(g.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn maxpool_gradcheck() {
        let mut rng = rng_from_seed(80);
        // Use well-separated values so finite differences don't flip argmax.
        let x = Tensor::randn(&[2, 2, 4, 4], 10.0, &mut rng);
        let mut p = MaxPool2::new();
        gradcheck::check_input_grad(&mut p, &x, 0.05);
    }

    #[test]
    fn gap_averages() {
        let x = Tensor::from_slice(&[1, 2, 2, 2], &[1., 2., 3., 4., 10., 10., 10., 10.]);
        let mut p = GlobalAvgPool::new();
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn gap_gradcheck() {
        let mut rng = rng_from_seed(81);
        let x = Tensor::randn(&[2, 3, 3, 3], 1.0, &mut rng);
        let mut p = GlobalAvgPool::new();
        gradcheck::check_input_grad(&mut p, &x, 0.05);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let mut p = MaxPool2::new();
        assert_eq!(p.forward(&x, true).dims(), &[1, 1, 2, 2]);
    }
}
