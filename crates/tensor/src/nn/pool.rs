use crate::nn::Layer;
use crate::Tensor;

/// 2×2 max pooling with stride 2 (VGG downsampling).
///
/// Odd trailing rows/columns are dropped, matching the usual floor
/// behaviour.
#[derive(Default)]
#[derive(Clone)]
pub struct MaxPool2 {
    argmax: Vec<usize>,
    in_dims: [usize; 4],
}

impl MaxPool2 {
    /// New pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let d = x.dims();
        debug_assert_eq!(d.len(), 4);
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let (oh, ow) = (h / 2, w / 2);
        self.in_dims = [n, c, h, w];
        self.argmax = vec![0; n * c * oh * ow];
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut oi = 0usize;
        for b in 0..n {
            for ch in 0..c {
                let plane = &x.data()[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let idx = iy * w + ix;
                                if plane[idx] > best {
                                    best = plane[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out.data_mut()[oi] = best;
                        self.argmax[oi] = (b * c + ch) * h * w + best_idx;
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, c, h, w] = self.in_dims;
        debug_assert!(n > 0, "MaxPool2::backward before forward");
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        for (oi, &src) in self.argmax.iter().enumerate() {
            grad_in.data_mut()[src] += grad_out.data()[oi];
        }
        grad_in
    }
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
#[derive(Default)]
#[derive(Clone)]
pub struct GlobalAvgPool {
    in_dims: [usize; 4],
}

impl GlobalAvgPool {
    /// New pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let d = x.dims();
        debug_assert_eq!(d.len(), 4);
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        self.in_dims = [n, c, h, w];
        let plane = (h * w).max(1) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                let s: f32 = x.data()[base..base + h * w].iter().sum();
                out.data_mut()[b * c + ch] = s / plane;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, c, h, w] = self.in_dims;
        debug_assert!(n > 0, "GlobalAvgPool::backward before forward");
        let plane = (h * w).max(1) as f32;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        for b in 0..n {
            for ch in 0..c {
                let g = grad_out.data()[b * c + ch] / plane;
                let base = (b * c + ch) * h * w;
                grad_in.data_mut()[base..base + h * w].fill(g);
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;
    use crate::rng_from_seed;

    #[test]
    fn maxpool_picks_maxima() {
        let x = Tensor::from_slice(
            &[1, 1, 4, 4],
            &[1., 2., 5., 6., 3., 4., 7., 8., 9., 10., 13., 14., 11., 12., 15., 16.],
        );
        let mut p = MaxPool2::new();
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_slice(&[1, 1, 2, 2], &[1., 9., 3., 4.]);
        let mut p = MaxPool2::new();
        p.forward(&x, true);
        let g = p.backward(&Tensor::from_slice(&[1, 1, 1, 1], &[5.0]));
        assert_eq!(g.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn maxpool_gradcheck() {
        let mut rng = rng_from_seed(80);
        // Use well-separated values so finite differences don't flip argmax.
        let x = Tensor::randn(&[2, 2, 4, 4], 10.0, &mut rng);
        let mut p = MaxPool2::new();
        gradcheck::check_input_grad(&mut p, &x, 0.05);
    }

    #[test]
    fn gap_averages() {
        let x = Tensor::from_slice(&[1, 2, 2, 2], &[1., 2., 3., 4., 10., 10., 10., 10.]);
        let mut p = GlobalAvgPool::new();
        let y = p.forward(&x, true);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn gap_gradcheck() {
        let mut rng = rng_from_seed(81);
        let x = Tensor::randn(&[2, 3, 3, 3], 1.0, &mut rng);
        let mut p = GlobalAvgPool::new();
        gradcheck::check_input_grad(&mut p, &x, 0.05);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let mut p = MaxPool2::new();
        assert_eq!(p.forward(&x, true).dims(), &[1, 1, 2, 2]);
    }
}
