use crate::nn::Layer;
use crate::optim::Param;
use crate::{init, matmul, matmul_a_bt, matmul_at_b, Rng, Tensor};

/// Fully-connected layer: `y = x·Wᵀ + b`.
///
/// `weight: [out, in]`, `bias: [out]`. Input `[batch, in]`.
#[derive(Clone)]
pub struct Linear {
    /// Weight matrix `[out, in]` — public so compression code can edit it.
    pub weight: Tensor,
    /// Bias vector `[out]`.
    pub bias: Tensor,
    /// Accumulated weight gradient.
    pub grad_weight: Tensor,
    /// Accumulated bias gradient.
    pub grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Kaiming-initialised linear layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: init::kaiming_normal(&[out_features, in_features], in_features, rng),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Build from explicit weights (used by structural surgery and tests).
    pub fn from_weights(weight: Tensor, bias: Tensor) -> Self {
        let gw = Tensor::zeros(weight.dims());
        let gb = Tensor::zeros(bias.dims());
        Linear { weight, bias, grad_weight: gw, grad_bias: gb, cached_input: None }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Remove the listed input columns (after pruning an upstream layer).
    ///
    /// `keep` is the sorted list of surviving input indices.
    pub fn keep_inputs(&mut self, keep: &[usize]) {
        let (out, _inf) = (self.out_features(), self.in_features());
        let mut w = Tensor::zeros(&[out, keep.len()]);
        for o in 0..out {
            for (nj, &j) in keep.iter().enumerate() {
                *w.at_mut(&[o, nj]) = self.weight.at(&[o, j]);
            }
        }
        self.weight = w;
        self.grad_weight = Tensor::zeros(&[out, keep.len()]);
        self.cached_input = None;
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        debug_assert_eq!(x.dims()[1], self.in_features(), "linear: input feature mismatch");
        self.cached_input = Some(x.clone());
        let mut y = matmul_a_bt(x, &self.weight);
        let out = self.out_features();
        for i in 0..y.rows() {
            let row = y.row_mut(i);
            for (v, &b) in row.iter_mut().zip(self.bias.data()) {
                *v += b;
            }
        }
        debug_assert_eq!(y.dims()[1], out);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward called before forward");
        // dW = gᵀ·x, db = Σ_batch g, dx = g·W
        self.grad_weight.add_assign(&matmul_at_b(grad_out, x));
        for i in 0..grad_out.rows() {
            for (gb, &g) in self.grad_bias.data_mut().iter_mut().zip(grad_out.row(i)) {
                *gb += g;
            }
        }
        matmul(grad_out, &self.weight)
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        vec![
            Param { value: &mut self.weight, grad: &mut self.grad_weight, weight_decay: true },
            Param { value: &mut self.bias, grad: &mut self.grad_bias, weight_decay: false },
        ]
    }

    fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;
    use crate::rng_from_seed;

    #[test]
    fn forward_shape_and_bias() {
        let mut l = Linear::from_weights(
            Tensor::from_slice(&[2, 3], &[1., 0., 0., 0., 1., 0.]),
            Tensor::from_slice(&[2], &[10., 20.]),
        );
        let x = Tensor::from_slice(&[1, 3], &[1., 2., 3.]);
        let y = l.forward(&x, true);
        assert_eq!(y.data(), &[11., 22.]);
    }

    #[test]
    fn gradcheck_linear() {
        let mut rng = rng_from_seed(40);
        let mut l = Linear::new(5, 4, &mut rng);
        let x = Tensor::randn(&[6, 5], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut l, &x, 0.05);
        gradcheck::check_param_grads(&mut l, &x, 0.05);
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let mut rng = rng_from_seed(41);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let g = Tensor::ones(&[2, 2]);
        l.forward(&x, true);
        l.backward(&g);
        let once = l.grad_weight.clone();
        l.forward(&x, true);
        l.backward(&g);
        let twice = l.grad_weight.clone();
        for (a, b) in once.data().iter().zip(twice.data()) {
            assert!((2.0 * a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn keep_inputs_slices_columns() {
        let mut l = Linear::from_weights(
            Tensor::from_slice(&[2, 4], &[1., 2., 3., 4., 5., 6., 7., 8.]),
            Tensor::zeros(&[2]),
        );
        l.keep_inputs(&[0, 2]);
        assert_eq!(l.in_features(), 2);
        assert_eq!(l.weight.data(), &[1., 3., 5., 7.]);
    }
}
