use crate::nn::Layer;
use crate::optim::Param;
use crate::{par, Tensor};

/// Batch normalisation over NCHW activations, per channel.
///
/// The learnable scale `gamma` is load-bearing for compression: Network
/// Slimming (C3) L1-regularises it and prunes channels whose `gamma` is
/// small, and LeGR's `l2_bn_param` criterion reads it. Both access it via
/// the public fields.
#[derive(Clone)]
pub struct BatchNorm2d {
    /// Per-channel scale `[c]`.
    pub gamma: Tensor,
    /// Per-channel shift `[c]`.
    pub beta: Tensor,
    /// Gradient of `gamma`.
    pub grad_gamma: Tensor,
    /// Gradient of `beta`.
    pub grad_beta: Tensor,
    /// Running mean (eval mode) `[c]`.
    pub running_mean: Tensor,
    /// Running variance (eval mode) `[c]`.
    pub running_var: Tensor,
    momentum: f32,
    eps: f32,
    // Forward cache (train mode).
    cached_xhat: Option<Tensor>,
    cached_invstd: Vec<f32>,
    cached_dims: [usize; 4],
}

impl BatchNorm2d {
    /// Identity-initialised batch-norm for `channels`.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            cached_xhat: None,
            cached_invstd: Vec::new(),
            cached_dims: [0; 4],
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.numel()
    }

    /// Keep only the listed channels (sorted indices).
    pub fn keep_channels(&mut self, keep: &[usize]) {
        let pick = |t: &Tensor| {
            let v: Vec<f32> = keep.iter().map(|&i| t.data()[i]).collect();
            Tensor::from_slice(&[keep.len()], &v)
        };
        self.gamma = pick(&self.gamma);
        self.beta = pick(&self.beta);
        self.running_mean = pick(&self.running_mean);
        self.running_var = pick(&self.running_var);
        self.grad_gamma = Tensor::zeros(&[keep.len()]);
        self.grad_beta = Tensor::zeros(&[keep.len()]);
        self.cached_xhat = None;
    }

    /// Add `l1 · sign(gamma)` to the gamma gradient (Network Slimming's
    /// sparsity regulariser, applied between backward and optimizer step).
    pub fn apply_gamma_l1(&mut self, l1: f32) {
        for (g, &v) in self.grad_gamma.data_mut().iter_mut().zip(self.gamma.data()) {
            *g += l1 * v.signum();
        }
    }

    /// Fold the eval-mode transform into per-channel `(scale, shift)`:
    /// `bn(x) = scale[c]·x + shift[c]` with `scale = gamma·invstd(running)`
    /// and `shift = beta − running_mean·scale`. A convolution feeding this
    /// batch-norm can apply the pair in its post-matmul write epilogue,
    /// skipping the separate normalisation pass entirely (eval mode only —
    /// train mode needs the batch statistics of the conv output).
    pub fn fold_eval(&self) -> (Vec<f32>, Vec<f32>) {
        let c = self.channels();
        let (g, b) = (self.gamma.data(), self.beta.data());
        let (rm, rv) = (self.running_mean.data(), self.running_var.data());
        let mut scale = vec![0.0f32; c];
        let mut shift = vec![0.0f32; c];
        for ch in 0..c {
            let s = g[ch] / (rv[ch] + self.eps).sqrt();
            scale[ch] = s;
            shift[ch] = b[ch] - rm[ch] * s;
        }
        (scale, shift)
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        debug_assert_eq!(d.len(), 4, "batchnorm input must be NCHW");
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        debug_assert_eq!(c, self.channels(), "batchnorm: channel mismatch");
        let plane = h * w;
        let count = (n * plane).max(1) as f32;
        let item = c * plane;
        let mut out = Tensor::zeros(d);
        let xd = x.data();
        if train {
            self.cached_dims = [n, c, h, w];
            // Phase 1 — per-channel batch statistics, one task per channel.
            // Accumulation order over (b, i) matches the serial kernel, so
            // each channel's stats are bitwise thread-count invariant.
            let eps = self.eps;
            let stats: Vec<(f32, f32, f32)> = par::par_map(c, |ch| {
                let mut mean = 0.0f32;
                for b in 0..n {
                    let base = (b * c + ch) * plane;
                    mean += xd[base..base + plane].iter().sum::<f32>();
                }
                mean /= count;
                let mut var = 0.0f32;
                for b in 0..n {
                    let base = (b * c + ch) * plane;
                    for &v in &xd[base..base + plane] {
                        var += (v - mean) * (v - mean);
                    }
                }
                var /= count;
                (mean, var, 1.0 / (var + eps).sqrt())
            });
            // Serial: running statistics and the invstd cache, in channel
            // order (independent per channel; kept serial for clarity).
            self.cached_invstd = stats.iter().map(|&(_, _, invstd)| invstd).collect();
            for (ch, &(mean, var, _)) in stats.iter().enumerate() {
                let rm = &mut self.running_mean.data_mut()[ch];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                let rv = &mut self.running_var.data_mut()[ch];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
            }
            // Phase 2 — normalise, one task per batch item; each writes its
            // disjoint out chunk and returns its xhat chunk. Pure per-element
            // expressions, so any partition gives identical bits.
            let mut xhat = Tensor::zeros(d);
            if item > 0 && n > 0 {
                let (gamma, beta) = (self.gamma.data(), self.beta.data());
                let xhat_chunks: Vec<Vec<f32>> =
                    par::par_chunks_mut_map(out.data_mut(), item, |b, out_chunk| {
                        let mut xh_chunk = vec![0.0f32; item];
                        for ch in 0..c {
                            let (mean, _, invstd) = stats[ch];
                            let (g, bshift) = (gamma[ch], beta[ch]);
                            let base = ch * plane;
                            let xbase = (b * c + ch) * plane;
                            for i in 0..plane {
                                let xh = (xd[xbase + i] - mean) * invstd;
                                xh_chunk[base + i] = xh;
                                out_chunk[base + i] = g * xh + bshift;
                            }
                        }
                        xh_chunk
                    });
                for (b, chunk) in xhat_chunks.into_iter().enumerate() {
                    xhat.data_mut()[b * item..(b + 1) * item].copy_from_slice(&chunk);
                }
            }
            self.cached_xhat = Some(xhat);
        } else if item > 0 && n > 0 {
            let (gamma, beta) = (self.gamma.data(), self.beta.data());
            let (rm, rv, eps) = (self.running_mean.data(), self.running_var.data(), self.eps);
            par::par_chunks_mut(out.data_mut(), item, |b, out_chunk| {
                for ch in 0..c {
                    let mean = rm[ch];
                    let invstd = 1.0 / (rv[ch] + eps).sqrt();
                    let (g, bshift) = (gamma[ch], beta[ch]);
                    let base = ch * plane;
                    let xbase = (b * c + ch) * plane;
                    for i in 0..plane {
                        out_chunk[base + i] = g * (xd[xbase + i] - mean) * invstd + bshift;
                    }
                }
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self
            .cached_xhat
            .as_ref()
            .expect("BatchNorm2d::backward requires a train-mode forward");
        let [n, c, h, w] = self.cached_dims;
        let plane = h * w;
        let count = (n * plane) as f32;
        let item = c * plane;
        let mut grad_in = Tensor::zeros(grad_out.dims());
        let (god, xhd) = (grad_out.data(), xhat.data());
        // Phase 1 — per-channel gradient sums, one task per channel, with
        // the serial (b, i) accumulation order.
        let sums: Vec<(f32, f32)> = par::par_map(c, |ch| {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for b in 0..n {
                let base = (b * c + ch) * plane;
                for i in 0..plane {
                    let dy = god[base + i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * xhd[base + i];
                }
            }
            (sum_dy, sum_dy_xhat)
        });
        for (ch, &(sum_dy, sum_dy_xhat)) in sums.iter().enumerate() {
            self.grad_beta.data_mut()[ch] += sum_dy;
            self.grad_gamma.data_mut()[ch] += sum_dy_xhat;
        }
        // Phase 2 — per-element input gradients, one task per batch item.
        if item > 0 && n > 0 {
            let gamma = self.gamma.data();
            let invstds = &self.cached_invstd;
            par::par_chunks_mut(grad_in.data_mut(), item, |b, gi_chunk| {
                for ch in 0..c {
                    let (sum_dy, sum_dy_xhat) = sums[ch];
                    let k = gamma[ch] * invstds[ch] / count;
                    let base = ch * plane;
                    let xbase = (b * c + ch) * plane;
                    for i in 0..plane {
                        let dy = god[xbase + i];
                        let xh = xhd[xbase + i];
                        gi_chunk[base + i] = k * (count * dy - sum_dy - xh * sum_dy_xhat);
                    }
                }
            });
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        vec![
            Param { value: &mut self.gamma, grad: &mut self.grad_gamma, weight_decay: false },
            Param { value: &mut self.beta, grad: &mut self.grad_beta, weight_decay: false },
        ]
    }

    fn param_count(&self) -> usize {
        self.gamma.numel() + self.beta.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;
    use crate::rng_from_seed;

    #[test]
    fn train_forward_normalises_per_channel() {
        let mut rng = rng_from_seed(60);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[4, 3, 5, 5], 3.0, &mut rng).map(|v| v + 7.0);
        let y = bn.forward(&x, true);
        // Each channel of the output should be ~zero-mean unit-var.
        for ch in 0..3 {
            let mut vals = Vec::new();
            for b in 0..4 {
                let base = (b * 3 + ch) * 25;
                vals.extend_from_slice(&y.data()[base..base + 25]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = rng_from_seed(61);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[8, 2, 4, 4], 2.0, &mut rng).map(|v| v + 3.0);
        // Many train passes converge the running stats to the batch stats.
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        let y_eval = bn.forward(&x, false);
        let y_train = bn.forward(&x, true);
        for (a, b) in y_eval.data().iter().zip(y_train.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn gradcheck_batchnorm() {
        let mut rng = rng_from_seed(62);
        let mut bn = BatchNorm2d::new(2);
        // Non-identity gamma/beta to exercise full formula.
        bn.gamma = Tensor::from_slice(&[2], &[1.5, 0.7]);
        bn.beta = Tensor::from_slice(&[2], &[0.3, -0.2]);
        let x = Tensor::randn(&[3, 2, 3, 3], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut bn, &x, 0.08);
        gradcheck::check_param_grads(&mut bn, &x, 0.08);
    }

    #[test]
    fn keep_channels_slices_all_state() {
        let mut bn = BatchNorm2d::new(4);
        bn.gamma = Tensor::from_slice(&[4], &[1., 2., 3., 4.]);
        bn.running_mean = Tensor::from_slice(&[4], &[5., 6., 7., 8.]);
        bn.keep_channels(&[1, 3]);
        assert_eq!(bn.channels(), 2);
        assert_eq!(bn.gamma.data(), &[2., 4.]);
        assert_eq!(bn.running_mean.data(), &[6., 8.]);
    }

    #[test]
    fn fold_eval_matches_eval_forward() {
        let mut rng = rng_from_seed(63);
        let mut bn = BatchNorm2d::new(3);
        // Non-trivial affine and running stats.
        bn.gamma = Tensor::from_slice(&[3], &[1.5, 0.7, -0.4]);
        bn.beta = Tensor::from_slice(&[3], &[0.3, -0.2, 1.1]);
        bn.running_mean = Tensor::from_slice(&[3], &[0.5, -1.0, 2.0]);
        bn.running_var = Tensor::from_slice(&[3], &[1.2, 0.4, 3.0]);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let y = bn.forward(&x, false);
        let (scale, shift) = bn.fold_eval();
        for b in 0..2 {
            for ch in 0..3 {
                let base = (b * 3 + ch) * 16;
                for i in 0..16 {
                    let folded = scale[ch] * x.data()[base + i] + shift[ch];
                    let diff = (folded - y.data()[base + i]).abs();
                    assert!(diff < 1e-5, "{folded} vs {}", y.data()[base + i]);
                }
            }
        }
    }

    #[test]
    fn gamma_l1_pushes_toward_zero() {
        let mut bn = BatchNorm2d::new(2);
        bn.gamma = Tensor::from_slice(&[2], &[0.5, -0.5]);
        bn.apply_gamma_l1(0.1);
        assert_eq!(bn.grad_gamma.data(), &[0.1, -0.1]);
    }
}
