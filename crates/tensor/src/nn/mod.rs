//! Neural-network layers with explicit forward/backward passes.
//!
//! Layers own their parameters and gradients, which makes the structural
//! surgery performed by compression methods (channel removal, low-rank
//! replacement, weight-matrix rewriting) direct: higher-level crates edit
//! `weight`/`bias` tensors in place and the layer keeps functioning.
//!
//! The [`Layer`] contract:
//! 1. `forward(x, train)` caches whatever the backward pass needs.
//! 2. `backward(grad_out)` *accumulates* into parameter gradients and
//!    returns the gradient with respect to the input.
//! 3. `params_mut()` exposes `(value, grad)` pairs for an optimizer.

mod act;
mod batchnorm;
mod conv;
mod linear;
mod pool;
mod rnn;

pub use act::{Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use linear::Linear;
pub use pool::{GlobalAvgPool, MaxPool2};
pub use rnn::Rnn;

use crate::optim::Param;
use crate::Tensor;

/// A differentiable layer.
pub trait Layer {
    /// Compute the output, caching state for [`Layer::backward`].
    ///
    /// `train` switches layers with train/eval behaviour (batch-norm).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Given the loss gradient wrt this layer's output, accumulate
    /// parameter gradients and return the gradient wrt the input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to `(value, grad)` parameter pairs.
    fn params_mut(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    /// Number of learnable scalar parameters.
    fn param_count(&self) -> usize {
        0
    }
}

/// A straight-line stack of layers (used for the MLPs inside `NN_exp`,
/// `F_mo`, and the RL controller's heads).
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn params_mut(&mut self) -> Vec<Param<'_>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }
}

pub mod gradcheck {
    //! Finite-difference gradient checking harness.
    //!
    //! Shared by the layer tests in this crate and by downstream crates'
    //! tests (composite units, compression surgery). Asserts on mismatch.

    use super::Layer;
    use crate::Tensor;

    /// Check `d loss / d input` where `loss = Σ out ⊙ probe`.
    pub fn check_input_grad(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true);
        let mut rng = crate::rng_from_seed(999);
        let probe = Tensor::randn(out.dims(), 1.0, &mut rng);
        let gin = layer.backward(&probe);
        let eps = 1e-2;
        let mut checked = 0;
        for idx in (0..x.numel()).step_by((x.numel() / 24).max(1)) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let lp: f32 = layer
                .forward(&xp, true)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lm: f32 = layer
                .forward(&xm, true)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = gin.data()[idx];
            assert!(
                (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                "input grad idx {idx}: fd {fd} vs analytic {an}"
            );
            checked += 1;
        }
        assert!(checked > 0);
    }

    /// Check `d loss / d params` where `loss = Σ out ⊙ probe`.
    pub fn check_param_grads(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true);
        let mut rng = crate::rng_from_seed(998);
        let probe = Tensor::randn(out.dims(), 1.0, &mut rng);
        // Clear any stale grads, then accumulate fresh ones.
        for p in layer.params_mut() {
            p.grad.zero();
        }
        let _ = layer.forward(x, true);
        let _ = layer.backward(&probe);
        let analytic: Vec<Tensor> = layer.params_mut().iter().map(|p| p.grad.clone()).collect();
        let eps = 1e-2;
        for (pi, an_grad) in analytic.iter().enumerate() {
            let n = an_grad.numel();
            for idx in (0..n).step_by((n / 12).max(1)) {
                let orig = {
                    let mut ps = layer.params_mut();
                    let v = ps[pi].value.data()[idx];
                    ps[pi].value.data_mut()[idx] = v + eps;
                    v
                };
                let lp: f32 = layer
                    .forward(x, true)
                    .data()
                    .iter()
                    .zip(probe.data())
                    .map(|(a, b)| a * b)
                    .sum();
                {
                    let mut ps = layer.params_mut();
                    ps[pi].value.data_mut()[idx] = orig - eps;
                }
                let lm: f32 = layer
                    .forward(x, true)
                    .data()
                    .iter()
                    .zip(probe.data())
                    .map(|(a, b)| a * b)
                    .sum();
                {
                    let mut ps = layer.params_mut();
                    ps[pi].value.data_mut()[idx] = orig;
                }
                let fd = (lp - lm) / (2.0 * eps);
                let an = an_grad.data()[idx];
                assert!(
                    (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                    "param {pi} idx {idx}: fd {fd} vs analytic {an}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn sequential_composes_forward_and_backward() {
        let mut rng = rng_from_seed(30);
        let mut net = Sequential::new()
            .push(Linear::new(6, 8, &mut rng))
            .push(Relu::new())
            .push(Linear::new(8, 3, &mut rng));
        let x = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let y = net.forward(&x, true);
        assert_eq!(y.dims(), &[4, 3]);
        let gx = net.backward(&Tensor::ones(&[4, 3]));
        assert_eq!(gx.dims(), &[4, 6]);
        assert_eq!(net.param_count(), 6 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(net.params_mut().len(), 4);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }

    #[test]
    fn sequential_gradcheck() {
        let mut rng = rng_from_seed(31);
        let mut net = Sequential::new()
            .push(Linear::new(5, 7, &mut rng))
            .push(Tanh::new())
            .push(Linear::new(7, 2, &mut rng));
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut net, &x, 0.05);
        gradcheck::check_param_grads(&mut net, &x, 0.05);
    }
}
