use crate::optim::Param;
use crate::{init, matmul, matmul_a_bt, matmul_at_b, Rng, Tensor};

/// A tanh recurrent cell with explicit backpropagation through time.
///
/// `h_t = tanh(x_t·W_xhᵀ + h_{t−1}·W_hhᵀ + b)`
///
/// Used by the F_mo evaluator to encode compression-strategy sequences
/// (Fig. 3 of the paper) and by the RL baseline's recurrent controller.
/// The step API is explicit rather than trait-based because callers drive
/// the unrolling themselves (variable sequence lengths, sampled actions).
#[derive(Clone)]
pub struct Rnn {
    /// Input projection `[hidden, input]`.
    pub w_xh: Tensor,
    /// Recurrent projection `[hidden, hidden]`.
    pub w_hh: Tensor,
    /// Bias `[hidden]`.
    pub b: Tensor,
    /// Gradients, same shapes.
    pub grad_w_xh: Tensor,
    /// Gradient of `w_hh`.
    pub grad_w_hh: Tensor,
    /// Gradient of `b`.
    pub grad_b: Tensor,
    hidden: usize,
    cache: Vec<StepCache>,
}

#[derive(Clone)]
struct StepCache {
    x: Tensor,
    h_prev: Tensor,
    h_new: Tensor,
}

impl Rnn {
    /// New cell with Kaiming-scaled input weights and small recurrent
    /// weights (spectral-norm-friendly 0.1/√hidden).
    pub fn new(input: usize, hidden: usize, rng: &mut Rng) -> Self {
        Rnn {
            w_xh: init::kaiming_normal(&[hidden, input], input, rng),
            w_hh: Tensor::randn(&[hidden, hidden], 0.1 / (hidden as f32).sqrt(), rng),
            b: Tensor::zeros(&[hidden]),
            grad_w_xh: Tensor::zeros(&[hidden, input]),
            grad_w_hh: Tensor::zeros(&[hidden, hidden]),
            grad_b: Tensor::zeros(&[hidden]),
            hidden,
            cache: Vec::new(),
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Zero initial state for a batch.
    pub fn init_state(&self, batch: usize) -> Tensor {
        Tensor::zeros(&[batch, self.hidden])
    }

    /// Clear the BPTT cache (start of a new sequence).
    pub fn reset(&mut self) {
        self.cache.clear();
    }

    /// Number of cached steps.
    pub fn steps(&self) -> usize {
        self.cache.len()
    }

    /// One recurrence step; caches state for [`Rnn::backward_through_time`].
    pub fn step(&mut self, x: &Tensor, h_prev: &Tensor) -> Tensor {
        debug_assert_eq!(x.dims()[0], h_prev.dims()[0], "rnn: batch mismatch");
        let mut pre = matmul_a_bt(x, &self.w_xh);
        pre.add_assign(&matmul_a_bt(h_prev, &self.w_hh));
        for i in 0..pre.rows() {
            for (v, &bv) in pre.row_mut(i).iter_mut().zip(self.b.data()) {
                *v += bv;
            }
        }
        let h_new = pre.map(f32::tanh);
        self.cache.push(StepCache { x: x.clone(), h_prev: h_prev.clone(), h_new: h_new.clone() });
        h_new
    }

    /// Backpropagate through all cached steps.
    ///
    /// `grads_h[t]` is the external loss gradient arriving at `h_t` (e.g.
    /// from a policy head at step `t`); `None` means no external gradient at
    /// that step. Returns per-step input gradients, oldest first, and
    /// clears the cache.
    pub fn backward_through_time(&mut self, grads_h: &[Option<Tensor>]) -> Vec<Tensor> {
        assert_eq!(grads_h.len(), self.cache.len(), "one grad slot per cached step");
        let steps = self.cache.len();
        let batch = self.cache.first().map_or(0, |c| c.x.dims()[0]);
        let mut dx_all = vec![Tensor::zeros(&[0]); steps];
        let mut carry = Tensor::zeros(&[batch, self.hidden]);
        for t in (0..steps).rev() {
            let cache = &self.cache[t];
            let mut dh = carry.clone();
            if let Some(g) = &grads_h[t] {
                dh.add_assign(g);
            }
            // Through tanh: dpre = dh ⊙ (1 − h²)
            let dpre = dh.zip(&cache.h_new, |g, y| g * (1.0 - y * y));
            self.grad_w_xh.add_assign(&matmul_at_b(&dpre, &cache.x));
            self.grad_w_hh.add_assign(&matmul_at_b(&dpre, &cache.h_prev));
            for i in 0..dpre.rows() {
                for (gb, &g) in self.grad_b.data_mut().iter_mut().zip(dpre.row(i)) {
                    *gb += g;
                }
            }
            dx_all[t] = matmul(&dpre, &self.w_xh);
            carry = matmul(&dpre, &self.w_hh);
        }
        self.cache.clear();
        dx_all
    }

    /// Parameter views for an optimizer.
    pub fn params_mut(&mut self) -> Vec<Param<'_>> {
        vec![
            Param { value: &mut self.w_xh, grad: &mut self.grad_w_xh, weight_decay: true },
            Param { value: &mut self.w_hh, grad: &mut self.grad_w_hh, weight_decay: true },
            Param { value: &mut self.b, grad: &mut self.grad_b, weight_decay: false },
        ]
    }

    /// Learnable scalar count.
    pub fn param_count(&self) -> usize {
        self.w_xh.numel() + self.w_hh.numel() + self.b.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn step_shapes() {
        let mut rng = rng_from_seed(90);
        let mut rnn = Rnn::new(4, 6, &mut rng);
        let h0 = rnn.init_state(3);
        let x = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let h1 = rnn.step(&x, &h0);
        assert_eq!(h1.dims(), &[3, 6]);
        assert_eq!(rnn.steps(), 1);
        rnn.reset();
        assert_eq!(rnn.steps(), 0);
    }

    #[test]
    fn bptt_gradcheck_on_final_state() {
        let mut rng = rng_from_seed(91);
        let mut rnn = Rnn::new(3, 4, &mut rng);
        let xs: Vec<Tensor> = (0..3).map(|_| Tensor::randn(&[2, 3], 1.0, &mut rng)).collect();
        let probe = Tensor::randn(&[2, 4], 1.0, &mut rng);

        let run = |rnn: &mut Rnn, xs: &[Tensor]| -> f32 {
            rnn.reset();
            let mut h = rnn.init_state(2);
            for x in xs {
                h = rnn.step(x, &h);
            }
            let l: f32 = h.data().iter().zip(probe.data()).map(|(a, b)| a * b).sum();
            rnn.reset();
            l
        };

        // Analytic gradients wrt inputs.
        rnn.reset();
        let mut h = rnn.init_state(2);
        for x in &xs {
            h = rnn.step(x, &h);
        }
        let grads = vec![None, None, Some(probe.clone())];
        let dxs = rnn.backward_through_time(&grads);

        let eps = 1e-2;
        for (t, x) in xs.iter().enumerate() {
            for idx in 0..x.numel() {
                let mut xs_p = xs.clone();
                xs_p[t].data_mut()[idx] += eps;
                let lp = run(&mut rnn, &xs_p);
                let mut xs_m = xs.clone();
                xs_m[t].data_mut()[idx] -= eps;
                let lm = run(&mut rnn, &xs_m);
                let fd = (lp - lm) / (2.0 * eps);
                let an = dxs[t].data()[idx];
                assert!(
                    (fd - an).abs() < 0.05 * (1.0 + fd.abs()),
                    "step {t} idx {idx}: fd {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn bptt_param_gradcheck() {
        let mut rng = rng_from_seed(92);
        let mut rnn = Rnn::new(2, 3, &mut rng);
        let xs: Vec<Tensor> = (0..2).map(|_| Tensor::randn(&[2, 2], 1.0, &mut rng)).collect();
        let probe = Tensor::randn(&[2, 3], 1.0, &mut rng);

        rnn.reset();
        let mut h = rnn.init_state(2);
        for x in &xs {
            h = rnn.step(x, &h);
        }
        let _ = rnn.backward_through_time(&[None, Some(probe.clone())]);
        let analytic = rnn.grad_w_hh.clone();

        let eps = 1e-2;
        for idx in 0..rnn.w_hh.numel() {
            let orig = rnn.w_hh.data()[idx];
            let eval = |rnn: &mut Rnn| -> f32 {
                rnn.reset();
                let mut h = rnn.init_state(2);
                for x in &xs {
                    h = rnn.step(x, &h);
                }
                rnn.reset();
                h.data().iter().zip(probe.data()).map(|(a, b)| a * b).sum()
            };
            rnn.w_hh.data_mut()[idx] = orig + eps;
            let lp = eval(&mut rnn);
            rnn.w_hh.data_mut()[idx] = orig - eps;
            let lm = eval(&mut rnn);
            rnn.w_hh.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = analytic.data()[idx];
            assert!((fd - an).abs() < 0.05 * (1.0 + fd.abs()), "idx {idx}: {fd} vs {an}");
        }
    }

    #[test]
    fn param_count_matches() {
        let mut rng = rng_from_seed(93);
        let rnn = Rnn::new(5, 7, &mut rng);
        assert_eq!(rnn.param_count(), 7 * 5 + 7 * 7 + 7);
    }
}
