//! Packed, cache-blocked matrix multiplication kernels.
//!
//! These three kernels cover every contraction the layers need:
//! `C = A·B` (forward), `C = Aᵀ·B` (weight gradients), `C = A·Bᵀ`
//! (input gradients).
//!
//! # Kernel architecture
//!
//! `matmul` and `matmul_at_b` are built on a fixed-size **register
//! microtile**: [`MR`]×[`NR`] output elements are accumulated in a
//! `[[f32; NR]; MR]` array the compiler keeps in SIMD registers. For each
//! contraction step the microkernel broadcasts one packed A value per row
//! and multiplies it into a contiguous NR-wide panel row of packed B, so
//! the inner loop autovectorises into broadcast–multiply–add over whole
//! vectors with `MR·NR` independent accumulator chains.
//!
//! **Packing.** B is repacked once per call into NR-wide column panels
//! (`panel[p][lane] = B[p][j0+lane]`, zero-padded at the right edge), so
//! the microkernel streams it contiguously; the one packing pass is
//! amortised across every row block — including all parallel row-block
//! tasks, which share the same read-only packed buffer. A is packed one
//! MR-row tile at a time (`tile[p][r] = A[i0+r][p]`, zero-padded), small
//! enough to stay L1-resident across the whole panel sweep. Pack buffers
//! are thread-local and reused across calls, so steady-state training
//! does not allocate per matmul.
//!
//! **Determinism.** Every output element accumulates its `k` products in
//! strictly ascending contraction order through a single accumulator
//! chain — the same order as the historical `ikj` kernels — so `matmul`
//! and `matmul_at_b` are *bitwise identical* to their pre-blocked
//! versions, at any thread count, on either the packed or the small-size
//! fallback path. `matmul_a_bt` uses a 4-lane strided dot product (see
//! [`dot4`]) with a fixed combine order; its results are reproducible at
//! any thread count but differ from the old strictly-serial dot, which is
//! why kernel-sensitive fingerprints carry
//! [`crate::KERNEL_NUMERICS_VERSION`].
//!
//! **Parallelism.** Large contractions are partitioned over MR-aligned
//! row blocks of `C` and run on the [`crate::par`] pool. The split is
//! planned by [`row_tasks`]: each task must clear a per-contraction FLOP
//! floor (calibrated so a pool hand-off never loses to staying serial),
//! and a thread budget of 1 short-circuits to a zero-overhead serial call
//! with no pool hand-off or chunk bookkeeping at all.

use crate::{par, Tensor};

/// Microtile rows: output rows accumulated per microkernel invocation.
pub const MR: usize = 4;
/// Microtile columns: output columns per B panel (SIMD-friendly width).
pub const NR: usize = 8;

/// Per-task FLOP floor for `matmul` row-block tasks.
pub const TASK_FLOPS_AB: usize = 1 << 19;
/// Per-task FLOP floor for `matmul_at_b` row-block tasks.
pub const TASK_FLOPS_AT_B: usize = 1 << 19;
/// Per-task FLOP floor for `matmul_a_bt` row-block tasks (the dot kernel
/// has no packing step, so smaller tasks already amortise the hand-off).
pub const TASK_FLOPS_A_BT: usize = 1 << 18;

/// Below this many FLOPs the packed kernels fall back to the plain `ikj`
/// loop: packing overhead would dominate. The fallback accumulates in the
/// same strictly ascending order, so the two paths are bitwise identical.
const PACK_MIN_FLOPS: usize = 1 << 13;

/// Plan the number of row-block tasks for a contraction writing `rows`
/// output rows with `flops` total work, quantised to `quantum` rows per
/// block. Returns 1 (serial) unless every task clears `floor` FLOPs and
/// the thread budget allows more. The plan depends only on the shape and
/// the budget — never on scheduling — and partitioning never changes
/// result bits, so `auto` thread mode stays deterministic.
pub fn row_tasks(rows: usize, quantum: usize, flops: usize, floor: usize, threads: usize) -> usize {
    if threads <= 1 || rows == 0 {
        return 1;
    }
    let by_work = flops / floor.max(1);
    let by_rows = rows.div_ceil(quantum.max(1));
    by_work.min(by_rows).min(threads).max(1)
}

// ------------------------------------------------------------------------
// Pack-buffer scratch (thread-local, reused across calls)
// ------------------------------------------------------------------------

use std::cell::Cell;

thread_local! {
    /// Reusable B-panel pack buffer. Taken (not borrowed) for the duration
    /// of one kernel call so re-entrant calls degrade to a fresh alloc
    /// instead of a borrow panic.
    static PACK_B: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
    /// Reusable A-tile pack buffer.
    static PACK_A: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

fn take_pack_b() -> Vec<f32> {
    PACK_B.with(Cell::take)
}

fn put_pack_b(buf: Vec<f32>) {
    PACK_B.with(|c| c.set(buf));
}

fn take_pack_a() -> Vec<f32> {
    PACK_A.with(Cell::take)
}

fn put_pack_a(buf: Vec<f32>) {
    PACK_A.with(|c| c.set(buf));
}

// ------------------------------------------------------------------------
// Epilogues
// ------------------------------------------------------------------------

/// What a kernel does with each finished accumulator row when writing it
/// back to `C`. Fusing the write epilogue avoids a second pass over the
/// output tensor (bias add, or a folded batch-norm scale/shift + ReLU).
#[derive(Clone, Copy)]
pub(crate) enum Epilogue<'a> {
    /// `c = acc`.
    Store,
    /// `c = acc + bias[row]`.
    Bias(&'a [f32]),
    /// `c = scale[row]·acc + shift[row]`, optionally clamped at zero —
    /// the folded eval-mode Conv→BatchNorm(→ReLU) write.
    ScaleShift {
        /// Per-output-row multiplier (`gamma·invstd` for folded BN).
        scale: &'a [f32],
        /// Per-output-row offset (`beta − mean·scale` for folded BN).
        shift: &'a [f32],
        /// Apply `max(0, ·)` after the affine map.
        relu: bool,
    },
}

impl Epilogue<'_> {
    /// Write one accumulator row into `out` for absolute output row `row`.
    #[inline]
    pub(crate) fn write(&self, row: usize, acc: &[f32], out: &mut [f32]) {
        match *self {
            Epilogue::Store => out.copy_from_slice(acc),
            Epilogue::Bias(bias) => {
                let bv = bias[row];
                for (o, &a) in out.iter_mut().zip(acc) {
                    *o = a + bv;
                }
            }
            Epilogue::ScaleShift { scale, shift, relu } => {
                let (s, t) = (scale[row], shift[row]);
                for (o, &a) in out.iter_mut().zip(acc) {
                    let v = s * a + t;
                    *o = if relu { v.max(0.0) } else { v };
                }
            }
        }
    }

    /// Fix up one already-stored output row in place (fallback path).
    #[inline]
    pub(crate) fn finish_row(&self, row: usize, out: &mut [f32]) {
        match *self {
            Epilogue::Store => {}
            Epilogue::Bias(bias) => {
                let bv = bias[row];
                for o in out.iter_mut() {
                    *o += bv;
                }
            }
            Epilogue::ScaleShift { scale, shift, relu } => {
                let (s, t) = (scale[row], shift[row]);
                for o in out.iter_mut() {
                    let v = s * *o + t;
                    *o = if relu { v.max(0.0) } else { v };
                }
            }
        }
    }
}

// ------------------------------------------------------------------------
// Packing
// ------------------------------------------------------------------------

/// Pack `B[k,n]` (row stride `n`) into NR-wide column panels:
/// `out[panel·k·NR + p·NR + lane] = B[p][panel·NR + lane]`, zero-padded in
/// the last panel. `k` here is the contraction length (number of B rows).
fn pack_b_panels(bd: &[f32], k: usize, n: usize, out: &mut Vec<f32>) {
    let panels = n.div_ceil(NR);
    out.clear();
    out.resize(panels * k * NR, 0.0);
    for panel in 0..panels {
        let j0 = panel * NR;
        let w = NR.min(n - j0);
        let dst = &mut out[panel * k * NR..(panel + 1) * k * NR];
        for p in 0..k {
            dst[p * NR..p * NR + w].copy_from_slice(&bd[p * n + j0..p * n + j0 + w]);
        }
    }
}

/// Pack one MR-row tile of row-major `A[m,k]`: rows `row0..row0+h` become
/// `out[p·MR + r] = A[row0+r][p]`, with rows `h..MR` zero-padded (they
/// contribute nothing and are never written back).
fn pack_a_tile(ad: &[f32], k: usize, row0: usize, h: usize, out: &mut Vec<f32>) {
    out.clear();
    out.resize(k * MR, 0.0);
    for r in 0..h {
        let a_row = &ad[(row0 + r) * k..(row0 + r + 1) * k];
        for (p, &v) in a_row.iter().enumerate() {
            out[p * MR + r] = v;
        }
    }
}

/// Pack one MR-row tile of *transposed* `A` for `Aᵀ·B`: output row `p` of
/// `C` is column `p` of `A[m,k]`, so `out[i·MR + r] = A[i][row0+r]` with
/// the contraction index `i` running over the `m` rows of `A`.
fn pack_at_tile(ad: &[f32], k: usize, m: usize, row0: usize, h: usize, out: &mut Vec<f32>) {
    out.clear();
    out.resize(m * MR, 0.0);
    for i in 0..m {
        let src = &ad[i * k + row0..i * k + row0 + h];
        let dst = &mut out[i * MR..i * MR + h];
        dst.copy_from_slice(src);
    }
}

// ------------------------------------------------------------------------
// Microkernel
// ------------------------------------------------------------------------

/// The register microkernel: accumulate an MR×NR output tile over a
/// contraction of length `k`. `ap` is a packed A tile (`k·MR`), `bp` a
/// packed B panel (`k·NR`). Each accumulator element follows a single
/// chain in strictly ascending `p`, so reassociation never happens and
/// the result is bitwise equal to the scalar `ikj` loop.
#[inline(always)]
fn microkernel(ap: &[f32], bp: &[f32], k: usize, acc: &mut [[f32; NR]; MR]) {
    for p in 0..k {
        let b = &bp[p * NR..p * NR + NR];
        let a = &ap[p * MR..p * MR + MR];
        for r in 0..MR {
            let av = a[r];
            for (c, &bv) in b.iter().enumerate() {
                acc[r][c] += av * bv;
            }
        }
    }
}

/// Compute rows `first_row..first_row+rows` of a packed contraction into
/// `out` (a block of whole `n`-wide rows). `kc` is the contraction
/// length; `pack_tile` packs the A tile for absolute rows. Shared by the
/// `A·B` and `Aᵀ·B` drivers — only the A packing differs.
fn gemm_packed_rows(
    bpack: &[f32],
    kc: usize,
    n: usize,
    out: &mut [f32],
    first_row: usize,
    epi: Epilogue<'_>,
    pack_tile: &dyn Fn(usize, usize, &mut Vec<f32>),
) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    let panels = n.div_ceil(NR);
    let mut apack = take_pack_a();
    let mut r0 = 0usize;
    while r0 < rows {
        let h = MR.min(rows - r0);
        pack_tile(first_row + r0, h, &mut apack);
        for panel in 0..panels {
            let j0 = panel * NR;
            let w = NR.min(n - j0);
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(&apack, &bpack[panel * kc * NR..(panel + 1) * kc * NR], kc, &mut acc);
            for r in 0..h {
                let row = r0 + r;
                epi.write(first_row + row, &acc[r][..w], &mut out[row * n + j0..row * n + j0 + w]);
            }
        }
        r0 += h;
    }
    put_pack_a(apack);
}

// ------------------------------------------------------------------------
// C = A·B
// ------------------------------------------------------------------------

/// Plain `ikj` fallback for tiny contractions (same ascending
/// accumulation order as the packed path, so bitwise identical).
fn matmul_rows_naive(
    ad: &[f32],
    bd: &[f32],
    out: &mut [f32],
    first_row: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    for (r, c_row) in out.chunks_exact_mut(n).enumerate() {
        let i = first_row + r;
        let a_row = &ad[i * k..(i + 1) * k];
        c_row.fill(0.0);
        for (p, &apk) in a_row.iter().enumerate() {
            let b_row = &bd[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += apk * bv;
            }
        }
        epi.finish_row(i, c_row);
    }
}

/// Slice-level `C[m,n] = A[m,k]·B[k,n]` with a fused write epilogue,
/// always on the calling thread. The building block `Conv2d` uses inside
/// its batch-parallel items.
pub(crate) fn gemm_slices(
    ad: &[f32],
    bd: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if 2 * m * k * n < PACK_MIN_FLOPS {
        matmul_rows_naive(ad, bd, out, 0, k, n, epi);
        return;
    }
    let mut bpack = take_pack_b();
    pack_b_panels(bd, k, n, &mut bpack);
    gemm_packed_rows(&bpack, k, n, out, 0, epi, &|row0, h, buf| {
        pack_a_tile(ad, k, row0, h, buf);
    });
    put_pack_b(bpack);
}

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = (a.dims()[0], a.dims()[1]);
    let (kb, n) = (b.dims()[0], b.dims()[1]);
    debug_assert_eq!(ka, kb, "matmul: inner dims {ka} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    if m == 0 || n == 0 {
        return c;
    }
    let flops = 2 * m * ka * n;
    let tasks = row_tasks(m, MR, flops, TASK_FLOPS_AB, par::current_threads());
    if tasks <= 1 {
        gemm_slices(ad, bd, c.data_mut(), m, ka, n, Epilogue::Store);
        return c;
    }
    // Pack B once on the calling thread; every row-block task reads the
    // same packed panels. Blocks are MR-aligned so no microtile straddles
    // a task boundary.
    let mut bpack = take_pack_b();
    pack_b_panels(bd, ka, n, &mut bpack);
    let tiles = m.div_ceil(MR);
    let chunk_rows = tiles.div_ceil(tasks) * MR;
    let bref = &bpack;
    par::par_chunks_mut(c.data_mut(), chunk_rows * n, |ci, chunk| {
        gemm_packed_rows(bref, ka, n, chunk, ci * chunk_rows, Epilogue::Store, &|row0, h, buf| {
            pack_a_tile(ad, ka, row0, h, buf);
        });
    });
    put_pack_b(bpack);
    c
}

// ------------------------------------------------------------------------
// C = Aᵀ·B
// ------------------------------------------------------------------------

/// Naive fallback for `C = Aᵀ·B` (row-scatter order: ascending `i` per
/// element, bitwise identical to the packed path).
fn at_b_rows_naive(
    ad: &[f32],
    bd: &[f32],
    out: &mut [f32],
    first_row: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    out.fill(0.0);
    let rows = out.len() / n.max(1);
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let b_row = &bd[i * n..(i + 1) * n];
        for r in 0..rows {
            let apv = a_row[first_row + r];
            let c_row = &mut out[r * n..(r + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += apv * bv;
            }
        }
    }
}

/// Slice-level `C[k,n] = Aᵀ[k,m]·B[m,n]` (A stored `[m,k]`), serial.
pub(crate) fn gemm_at_b_slices(
    ad: &[f32],
    bd: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), k * n);
    if k == 0 || n == 0 {
        return;
    }
    if 2 * m * k * n < PACK_MIN_FLOPS {
        at_b_rows_naive(ad, bd, out, 0, m, k, n);
        return;
    }
    let mut bpack = take_pack_b();
    pack_b_panels(bd, m, n, &mut bpack);
    gemm_packed_rows(&bpack, m, n, out, 0, Epilogue::Store, &|row0, h, buf| {
        pack_at_tile(ad, k, m, row0, h, buf);
    });
    put_pack_b(bpack);
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` where `A` is `[m,k]`.
///
/// Never materialises the transpose as a whole: A tiles are packed
/// MR columns at a time. Parallel tasks own disjoint MR-aligned bands of
/// output rows `p`; each element accumulates over `i` in ascending order,
/// exactly like the serial (and historical) kernel.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (mb, n) = (b.dims()[0], b.dims()[1]);
    debug_assert_eq!(m, mb, "matmul_at_b: outer dims {m} vs {mb}");
    let mut c = Tensor::zeros(&[k, n]);
    let (ad, bd) = (a.data(), b.data());
    if k == 0 || n == 0 {
        return c;
    }
    let flops = 2 * m * k * n;
    let tasks = row_tasks(k, MR, flops, TASK_FLOPS_AT_B, par::current_threads());
    if tasks <= 1 {
        gemm_at_b_slices(ad, bd, c.data_mut(), m, k, n);
        return c;
    }
    let mut bpack = take_pack_b();
    pack_b_panels(bd, m, n, &mut bpack);
    let tiles = k.div_ceil(MR);
    let chunk_rows = tiles.div_ceil(tasks) * MR;
    let bref = &bpack;
    par::par_chunks_mut(c.data_mut(), chunk_rows * n, |ci, chunk| {
        gemm_packed_rows(bref, m, n, chunk, ci * chunk_rows, Epilogue::Store, &|row0, h, buf| {
            pack_at_tile(ad, k, m, row0, h, buf);
        });
    });
    put_pack_b(bpack);
    c
}

// ------------------------------------------------------------------------
// C = A·Bᵀ
// ------------------------------------------------------------------------

/// Four-lane strided dot product with a **fixed combine order**.
///
/// Lane `l` accumulates elements `l, l+4, l+8, …` (which the compiler
/// vectorises into one 4-wide SIMD accumulator); the lanes are then
/// combined as `(lane0 + lane1) + (lane2 + lane3)`, and the `len % 4`
/// tail elements are added one by one in ascending order. This order
/// depends only on the vector length — never on threading or
/// partitioning — which is what keeps `matmul_a_bt` bitwise reproducible
/// at any thread count.
#[inline]
fn dot4(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 4];
    let (a4, a_tail) = a.split_at(a.len() / 4 * 4);
    let (b4, b_tail) = b.split_at(a4.len());
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        lanes[0] += ca[0] * cb[0];
        lanes[1] += ca[1] * cb[1];
        lanes[2] += ca[2] * cb[2];
        lanes[3] += ca[3] * cb[3];
    }
    let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (&av, &bv) in a_tail.iter().zip(b_tail) {
        sum += av * bv;
    }
    sum
}

/// Rows `first_row ..` of `C = A·Bᵀ` into `out` (a block of whole rows).
/// Both operand rows are contiguous, so each output element is one
/// [`dot4`] over hot cache lines.
fn a_bt_rows(ad: &[f32], bd: &[f32], out: &mut [f32], first_row: usize, n: usize, k: usize) {
    for (r, c_row) in out.chunks_exact_mut(k).enumerate() {
        let i = first_row + r;
        let a_row = &ad[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            *cv = dot4(a_row, &bd[j * n..(j + 1) * n]);
        }
    }
}

/// Slice-level `C[m,k] = A[m,n]·Bᵀ[n,k]` (B stored `[k,n]`), serial.
pub(crate) fn gemm_a_bt_slices(ad: &[f32], bd: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    debug_assert_eq!(out.len(), m * k);
    if m == 0 || k == 0 {
        return;
    }
    a_bt_rows(ad, bd, out, 0, n, k);
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` where `B` is `[k,n]`.
///
/// Inner loop is a [`dot4`] over contiguous rows of both operands, so
/// every output element is independent and row blocks parallelise freely.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let (k, nb) = (b.dims()[0], b.dims()[1]);
    debug_assert_eq!(n, nb, "matmul_a_bt: inner dims {n} vs {nb}");
    let mut c = Tensor::zeros(&[m, k]);
    let (ad, bd) = (a.data(), b.data());
    if m == 0 || k == 0 {
        return c;
    }
    let flops = 2 * m * n * k;
    let tasks = row_tasks(m, 1, flops, TASK_FLOPS_A_BT, par::current_threads());
    if tasks <= 1 {
        a_bt_rows(ad, bd, c.data_mut(), 0, n, k);
    } else {
        let chunk_rows = m.div_ceil(tasks);
        par::par_chunks_mut(c.data_mut(), chunk_rows * k, |ci, chunk| {
            a_bt_rows(ad, bd, chunk, ci * chunk_rows, n, k);
        });
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *c.at_mut(&[i, j]) = acc;
            }
        }
        c
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = rng_from_seed(3);
        let a = Tensor::randn(&[7, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 9], 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = rng_from_seed(4);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 8], 1.0, &mut rng);
        assert_close(&matmul_at_b(&a, &b), &naive(&a.transpose2(), &b), 1e-4);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = rng_from_seed(5);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[8, 4], 1.0, &mut rng);
        assert_close(&matmul_a_bt(&a, &b), &naive(&a, &b.transpose2()), 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        let mut rng = rng_from_seed(6);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&matmul(&a, &eye), &a, 1e-6);
    }

    #[test]
    fn degenerate_dims() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[0, 2]);
        let a = Tensor::ones(&[2, 1]);
        let b = Tensor::ones(&[1, 2]);
        assert_eq!(matmul(&a, &b).data(), &[1., 1., 1., 1.]);
        // Zero-length contraction: all-zero output, no panic.
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        assert_eq!(matmul(&a, &b).data(), &[0.0; 6]);
    }

    /// Every ragged shape around the microtile edges, on both the packed
    /// path (forced big k) and the naive fallback, against the reference.
    #[test]
    fn ragged_microtile_shapes_match_naive() {
        let mut rng = rng_from_seed(7);
        let edges = [1usize, MR - 1, MR + 1, NR - 1, NR + 1, 2 * NR + 3];
        for &m in &edges {
            for &n in &edges {
                for &k in &[1usize, 3, NR + 1, 67] {
                    let a = Tensor::randn(&[m, k], 1.0, &mut rng);
                    let b = Tensor::randn(&[k, n], 1.0, &mut rng);
                    assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-3);
                    let at = Tensor::randn(&[k, m], 1.0, &mut rng);
                    assert_close(&matmul_at_b(&at, &b), &naive(&at.transpose2(), &b), 1e-3);
                    let bt = Tensor::randn(&[n, k], 1.0, &mut rng);
                    let abt = Tensor::randn(&[m, k], 1.0, &mut rng);
                    assert_close(&matmul_a_bt(&abt, &bt), &naive(&abt, &bt.transpose2()), 1e-3);
                }
            }
        }
    }

    /// The packed path and the small-size fallback accumulate in the same
    /// order, so forcing either path must give identical bits.
    #[test]
    fn packed_and_fallback_paths_bitwise_identical() {
        let mut rng = rng_from_seed(8);
        // Big enough for packing, checked against the plain ikj loop.
        let (m, k, n) = (13, 29, 21);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let mut packed = vec![0.0f32; m * n];
        gemm_slices(a.data(), b.data(), &mut packed, m, k, n, Epilogue::Store);
        let mut naive_out = vec![0.0f32; m * n];
        matmul_rows_naive(a.data(), b.data(), &mut naive_out, 0, k, n, Epilogue::Store);
        assert_eq!(packed, naive_out, "matmul paths diverge");
        let at = Tensor::randn(&[k, m], 1.0, &mut rng);
        let mut packed_t = vec![0.0f32; m * n];
        gemm_at_b_slices(at.data(), b.data(), &mut packed_t, k, m, n);
        let mut naive_t = vec![0.0f32; m * n];
        at_b_rows_naive(at.data(), b.data(), &mut naive_t, 0, k, m, n);
        assert_eq!(packed_t, naive_t, "at_b paths diverge");
    }

    #[test]
    fn dot4_combine_order_is_fixed() {
        // ((l0+l1)+(l2+l3)) + ascending tail — spelled out by hand.
        let a: Vec<f32> = (0..11).map(|i| (i as f32) * 0.37 - 1.3).collect();
        let b: Vec<f32> = (0..11).map(|i| 2.0 - (i as f32) * 0.11).collect();
        let mut lanes = [0.0f32; 4];
        for t in 0..2 {
            for l in 0..4 {
                lanes[l] += a[4 * t + l] * b[4 * t + l];
            }
        }
        let mut expect = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for i in 8..11 {
            expect += a[i] * b[i];
        }
        assert_eq!(dot4(&a, &b), expect);
    }

    #[test]
    fn fused_epilogues_match_separate_passes() {
        let mut rng = rng_from_seed(9);
        let (m, k, n) = (6, 40, 18);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let base = matmul(&a, &b);
        let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.5 - 1.0).collect();
        let mut with_bias = vec![0.0f32; m * n];
        gemm_slices(a.data(), b.data(), &mut with_bias, m, k, n, Epilogue::Bias(&bias));
        for i in 0..m {
            for j in 0..n {
                assert_eq!(with_bias[i * n + j], base.data()[i * n + j] + bias[i]);
            }
        }
        let scale: Vec<f32> = (0..m).map(|i| 0.3 + i as f32 * 0.1).collect();
        let shift: Vec<f32> = (0..m).map(|i| -0.2 + i as f32 * 0.05).collect();
        let mut fused = vec![0.0f32; m * n];
        gemm_slices(
            a.data(),
            b.data(),
            &mut fused,
            m,
            k,
            n,
            Epilogue::ScaleShift { scale: &scale, shift: &shift, relu: true },
        );
        for i in 0..m {
            for j in 0..n {
                let expect = (scale[i] * base.data()[i * n + j] + shift[i]).max(0.0);
                assert_eq!(fused[i * n + j], expect);
            }
        }
    }

    #[test]
    fn row_tasks_planning() {
        // Serial when the budget is 1, regardless of size.
        assert_eq!(row_tasks(4096, MR, usize::MAX >> 1, TASK_FLOPS_AB, 1), 1);
        // Serial when the work cannot feed two tasks at the floor.
        assert_eq!(row_tasks(64, MR, 2 * TASK_FLOPS_AB - 1, TASK_FLOPS_AB, 8), 1);
        // Splits once every task clears the floor.
        assert_eq!(row_tasks(64, MR, 2 * TASK_FLOPS_AB, TASK_FLOPS_AB, 8), 2);
        // Bounded by the thread budget and by MR-quantised rows.
        assert_eq!(row_tasks(64, MR, usize::MAX >> 1, TASK_FLOPS_AB, 4), 4);
        assert_eq!(row_tasks(7, MR, usize::MAX >> 1, TASK_FLOPS_AB, 64), 2);
    }

    /// Sizes that straddle the adaptive parallel threshold (the smallest
    /// shape whose work feeds two tasks at the per-kernel FLOP floor):
    /// threshold−1 stays serial, threshold and threshold+1 dispatch to the
    /// pool — and all of them must be bitwise identical at 1/2/3/8
    /// threads.
    #[test]
    fn threshold_straddling_sizes_bitwise_identical() {
        let mut rng = rng_from_seed(12);
        let (k, n) = (64usize, 64usize);
        // flops = 2·m·k·n, so two tasks first clear the floor at
        // m* = floor/(k·n) (same m* for A·B over rows and Aᵀ·B over the
        // contraction since both use floor 2^19).
        let m_star_ab = TASK_FLOPS_AB / (k * n);
        let m_star_abt = TASK_FLOPS_A_BT / (k * n);
        assert_eq!(row_tasks(m_star_ab - 1, MR, 2 * (m_star_ab - 1) * k * n, TASK_FLOPS_AB, 8), 1);
        assert_eq!(row_tasks(m_star_ab, MR, 2 * m_star_ab * k * n, TASK_FLOPS_AB, 8), 2);
        for dm in [-1i64, 0, 1] {
            let m_ab = (m_star_ab as i64 + dm) as usize;
            let a = Tensor::randn(&[m_ab, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let at = Tensor::randn(&[m_ab, k], 1.0, &mut rng);
            let bt_b = Tensor::randn(&[m_ab, n], 1.0, &mut rng);
            let m_bt = (m_star_abt as i64 + dm) as usize;
            let abt_a = Tensor::randn(&[m_bt, n], 1.0, &mut rng);
            let abt_b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let serial = par::with_threads(1, || {
                (matmul(&a, &b), matmul_at_b(&at, &bt_b), matmul_a_bt(&abt_a, &abt_b))
            });
            for threads in [2, 3, 8] {
                let par_out = par::with_threads(threads, || {
                    (matmul(&a, &b), matmul_at_b(&at, &bt_b), matmul_a_bt(&abt_a, &abt_b))
                });
                assert_eq!(serial.0.data(), par_out.0.data(), "matmul m*{dm:+} @ {threads}t");
                assert_eq!(serial.1.data(), par_out.1.data(), "at_b m*{dm:+} @ {threads}t");
                assert_eq!(serial.2.data(), par_out.2.data(), "a_bt m*{dm:+} @ {threads}t");
            }
        }
    }

    #[test]
    fn parallel_paths_are_bitwise_serial() {
        // Big enough to clear the adaptive threshold so the pool path runs.
        let mut rng = rng_from_seed(11);
        let a = Tensor::randn(&[96, 64], 1.0, &mut rng);
        let b = Tensor::randn(&[64, 80], 1.0, &mut rng);
        let b_tall = Tensor::randn(&[96, 80], 1.0, &mut rng);
        let bt = Tensor::randn(&[80, 64], 1.0, &mut rng);
        let serial = par::with_threads(1, || {
            (matmul(&a, &b), matmul_at_b(&a, &b_tall), matmul_a_bt(&a, &bt))
        });
        for threads in [2, 3, 8] {
            let par_out = par::with_threads(threads, || {
                (matmul(&a, &b), matmul_at_b(&a, &b_tall), matmul_a_bt(&a, &bt))
            });
            assert_eq!(serial.0.data(), par_out.0.data(), "matmul @ {threads}");
            assert_eq!(serial.1.data(), par_out.1.data(), "matmul_at_b @ {threads}");
            assert_eq!(serial.2.data(), par_out.2.data(), "matmul_a_bt @ {threads}");
        }
    }
}
