//! Blocked matrix multiplication kernels.
//!
//! These three kernels cover every contraction the layers need:
//! `C = A·B` (forward), `C = Aᵀ·B` (weight gradients), `C = A·Bᵀ`
//! (input gradients). The inner loops are written in `ikj` order so the
//! innermost loop streams contiguously over both `B` and `C` rows, which the
//! compiler auto-vectorises.

use crate::Tensor;

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = (a.dims()[0], a.dims()[1]);
    let (kb, n) = (b.dims()[0], b.dims()[1]);
    debug_assert_eq!(ka, kb, "matmul: inner dims {ka} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    for i in 0..m {
        let a_row = &ad[i * ka..(i + 1) * ka];
        let c_row = &mut cd[i * n..(i + 1) * n];
        for (p, &apk) in a_row.iter().enumerate() {
            if apk == 0.0 {
                continue;
            }
            let b_row = &bd[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += apk * bv;
            }
        }
    }
    c
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` where `A` is `[m,k]`.
///
/// Avoids materialising the transpose: iterates rows of `A` and scatters.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (mb, n) = (b.dims()[0], b.dims()[1]);
    debug_assert_eq!(m, mb, "matmul_at_b: outer dims {m} vs {mb}");
    let mut c = Tensor::zeros(&[k, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let b_row = &bd[i * n..(i + 1) * n];
        for (p, &apv) in a_row.iter().enumerate() {
            if apv == 0.0 {
                continue;
            }
            let c_row = &mut cd[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += apv * bv;
            }
        }
    }
    c
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` where `B` is `[k,n]`.
///
/// Inner loop is a dot product over contiguous rows of both operands.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let (k, nb) = (b.dims()[0], b.dims()[1]);
    debug_assert_eq!(n, nb, "matmul_a_bt: inner dims {n} vs {nb}");
    let mut c = Tensor::zeros(&[m, k]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    for i in 0..m {
        let a_row = &ad[i * n..(i + 1) * n];
        let c_row = &mut cd[i * k..(i + 1) * k];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &bd[j * n..(j + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *c.at_mut(&[i, j]) = acc;
            }
        }
        c
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = rng_from_seed(3);
        let a = Tensor::randn(&[7, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 9], 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = rng_from_seed(4);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 8], 1.0, &mut rng);
        assert_close(&matmul_at_b(&a, &b), &naive(&a.transpose2(), &b), 1e-4);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = rng_from_seed(5);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[8, 4], 1.0, &mut rng);
        assert_close(&matmul_a_bt(&a, &b), &naive(&a, &b.transpose2()), 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        let mut rng = rng_from_seed(6);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&matmul(&a, &eye), &a, 1e-6);
    }

    #[test]
    fn degenerate_dims() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[0, 2]);
        let a = Tensor::ones(&[2, 1]);
        let b = Tensor::ones(&[1, 2]);
        assert_eq!(matmul(&a, &b).data(), &[1., 1., 1., 1.]);
    }
}
