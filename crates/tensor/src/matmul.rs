//! Blocked matrix multiplication kernels.
//!
//! These three kernels cover every contraction the layers need:
//! `C = A·B` (forward), `C = Aᵀ·B` (weight gradients), `C = A·Bᵀ`
//! (input gradients). The inner loops are written in `ikj` order so the
//! innermost loop streams contiguously over both `B` and `C` rows, which the
//! compiler auto-vectorises.
//!
//! Large contractions are partitioned over rows of `C` and run on the
//! [`crate::par`] pool. Each task writes a disjoint block of output rows
//! and accumulates every element in exactly the serial order, so results
//! are bitwise identical at any thread count. Contractions under
//! [`PAR_MIN_FLOPS`] stay on the calling thread — below that size the
//! hand-off costs more than it saves.

use crate::{par, Tensor};

/// Minimum `2·m·k·n` FLOPs before a contraction is worth partitioning.
pub const PAR_MIN_FLOPS: usize = 1 << 18;

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = (a.dims()[0], a.dims()[1]);
    let (kb, n) = (b.dims()[0], b.dims()[1]);
    debug_assert_eq!(ka, kb, "matmul: inner dims {ka} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let threads = par::current_threads();
    if threads <= 1 || m <= 1 || 2 * m * ka * n < PAR_MIN_FLOPS {
        matmul_rows(ad, bd, c.data_mut(), 0, ka, n);
    } else {
        let chunk_rows = m.div_ceil(threads.min(m));
        par::par_chunks_mut(c.data_mut(), chunk_rows * n, |ci, chunk| {
            matmul_rows(ad, bd, chunk, ci * chunk_rows, ka, n);
        });
    }
    c
}

/// Rows `first_row ..` of `C = A·B` into `out` (a block of whole rows).
fn matmul_rows(ad: &[f32], bd: &[f32], out: &mut [f32], first_row: usize, k: usize, n: usize) {
    for (r, c_row) in out.chunks_exact_mut(n).enumerate() {
        let i = first_row + r;
        let a_row = &ad[i * k..(i + 1) * k];
        for (p, &apk) in a_row.iter().enumerate() {
            let b_row = &bd[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += apk * bv;
            }
        }
    }
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` where `A` is `[m,k]`.
///
/// Avoids materialising the transpose: iterates rows of `A` and scatters.
/// Parallel tasks own disjoint bands of output rows `p`; each element still
/// accumulates over `i` in ascending order, exactly like the serial kernel.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (mb, n) = (b.dims()[0], b.dims()[1]);
    debug_assert_eq!(m, mb, "matmul_at_b: outer dims {m} vs {mb}");
    let mut c = Tensor::zeros(&[k, n]);
    let (ad, bd) = (a.data(), b.data());
    let threads = par::current_threads();
    if threads <= 1 || k <= 1 || 2 * m * k * n < PAR_MIN_FLOPS {
        at_b_rows(ad, bd, c.data_mut(), 0, m, k, n);
    } else {
        let chunk_rows = k.div_ceil(threads.min(k));
        par::par_chunks_mut(c.data_mut(), chunk_rows * n, |ci, chunk| {
            at_b_rows(ad, bd, chunk, ci * chunk_rows, m, k, n);
        });
    }
    c
}

/// Rows `first_row ..` of `C = Aᵀ·B` into `out` (a block of whole rows).
fn at_b_rows(
    ad: &[f32],
    bd: &[f32],
    out: &mut [f32],
    first_row: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let rows = out.len() / n.max(1);
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let b_row = &bd[i * n..(i + 1) * n];
        for r in 0..rows {
            let apv = a_row[first_row + r];
            let c_row = &mut out[r * n..(r + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += apv * bv;
            }
        }
    }
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` where `B` is `[k,n]`.
///
/// Inner loop is a dot product over contiguous rows of both operands, so
/// every output element is independent and row blocks parallelise freely.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let (k, nb) = (b.dims()[0], b.dims()[1]);
    debug_assert_eq!(n, nb, "matmul_a_bt: inner dims {n} vs {nb}");
    let mut c = Tensor::zeros(&[m, k]);
    let (ad, bd) = (a.data(), b.data());
    let threads = par::current_threads();
    if threads <= 1 || m <= 1 || 2 * m * n * k < PAR_MIN_FLOPS {
        a_bt_rows(ad, bd, c.data_mut(), 0, n, k);
    } else {
        let chunk_rows = m.div_ceil(threads.min(m));
        par::par_chunks_mut(c.data_mut(), chunk_rows * k, |ci, chunk| {
            a_bt_rows(ad, bd, chunk, ci * chunk_rows, n, k);
        });
    }
    c
}

/// Rows `first_row ..` of `C = A·Bᵀ` into `out` (a block of whole rows).
fn a_bt_rows(ad: &[f32], bd: &[f32], out: &mut [f32], first_row: usize, n: usize, k: usize) {
    for (r, c_row) in out.chunks_exact_mut(k).enumerate() {
        let i = first_row + r;
        let a_row = &ad[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &bd[j * n..(j + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *c.at_mut(&[i, j]) = acc;
            }
        }
        c
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = rng_from_seed(3);
        let a = Tensor::randn(&[7, 5], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 9], 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = rng_from_seed(4);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 8], 1.0, &mut rng);
        assert_close(&matmul_at_b(&a, &b), &naive(&a.transpose2(), &b), 1e-4);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = rng_from_seed(5);
        let a = Tensor::randn(&[6, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[8, 4], 1.0, &mut rng);
        assert_close(&matmul_a_bt(&a, &b), &naive(&a, &b.transpose2()), 1e-4);
    }

    #[test]
    fn identity_is_noop() {
        let mut rng = rng_from_seed(6);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&matmul(&a, &eye), &a, 1e-6);
    }

    #[test]
    fn degenerate_dims() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[0, 2]);
        let a = Tensor::ones(&[2, 1]);
        let b = Tensor::ones(&[1, 2]);
        assert_eq!(matmul(&a, &b).data(), &[1., 1., 1., 1.]);
    }

    #[test]
    fn parallel_paths_are_bitwise_serial() {
        // Big enough to clear PAR_MIN_FLOPS so the pool path actually runs.
        let mut rng = rng_from_seed(11);
        let a = Tensor::randn(&[96, 64], 1.0, &mut rng);
        let b = Tensor::randn(&[64, 80], 1.0, &mut rng);
        let b_tall = Tensor::randn(&[96, 80], 1.0, &mut rng);
        let bt = Tensor::randn(&[80, 64], 1.0, &mut rng);
        let serial = par::with_threads(1, || {
            (matmul(&a, &b), matmul_at_b(&a, &b_tall), matmul_a_bt(&a, &bt))
        });
        for threads in [2, 3, 8] {
            let par_out = par::with_threads(threads, || {
                (matmul(&a, &b), matmul_at_b(&a, &b_tall), matmul_a_bt(&a, &bt))
            });
            assert_eq!(serial.0.data(), par_out.0.data(), "matmul @ {threads}");
            assert_eq!(serial.1.data(), par_out.1.data(), "matmul_at_b @ {threads}");
            assert_eq!(serial.2.data(), par_out.2.data(), "matmul_a_bt @ {threads}");
        }
    }
}
