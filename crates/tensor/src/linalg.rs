//! Dense linear-algebra routines used by the low-rank compression methods.
//!
//! HOS's HOOI kernel approximation and LFB's filter-basis learning both need
//! a truncated SVD of (stacked) filter matrices. We compute it through a
//! Jacobi eigendecomposition of the Gram matrix `AᵀA` — exact, dependency-
//! free, and fast enough for the `ic·kh·kw ≲ a few hundred` matrices that
//! arise in CNN compression.

use crate::Tensor;

/// Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted descending
/// and eigenvectors as *columns* of the returned rank-2 tensor.
pub fn jacobi_eigh(sym: &Tensor, max_sweeps: usize) -> (Vec<f32>, Tensor) {
    let n = sym.dims()[0];
    debug_assert_eq!(sym.dims(), &[n, n], "jacobi_eigh requires square input");
    let mut a = sym.clone();
    let mut v = Tensor::zeros(&[n, n]);
    for i in 0..n {
        *v.at_mut(&[i, i]) = 1.0;
    }
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius norm — convergence criterion.
        let mut off = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a.at(&[i, j]) * a.at(&[i, j]);
            }
        }
        if off.sqrt() < 1e-7 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.at(&[p, q]);
                if apq.abs() < 1e-12 {
                    continue;
                }
                let app = a.at(&[p, p]);
                let aqq = a.at(&[q, q]);
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of `a`.
                for k in 0..n {
                    let akp = a.at(&[k, p]);
                    let akq = a.at(&[k, q]);
                    *a.at_mut(&[k, p]) = c * akp - s * akq;
                    *a.at_mut(&[k, q]) = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a.at(&[p, k]);
                    let aqk = a.at(&[q, k]);
                    *a.at_mut(&[p, k]) = c * apk - s * aqk;
                    *a.at_mut(&[q, k]) = s * apk + c * aqk;
                }
                // Accumulate rotation into eigenvector matrix.
                for k in 0..n {
                    let vkp = v.at(&[k, p]);
                    let vkq = v.at(&[k, q]);
                    *v.at_mut(&[k, p]) = c * vkp - s * vkq;
                    *v.at_mut(&[k, q]) = s * vkp + c * vkq;
                }
            }
        }
    }
    // Sort by eigenvalue descending.
    let mut order: Vec<usize> = (0..n).collect();
    let eigvals: Vec<f32> = (0..n).map(|i| a.at(&[i, i])).collect();
    order.sort_by(|&i, &j| eigvals[j].total_cmp(&eigvals[i]));
    let sorted_vals: Vec<f32> = order.iter().map(|&i| eigvals[i]).collect();
    let mut sorted_vecs = Tensor::zeros(&[n, n]);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            *sorted_vecs.at_mut(&[row, new_col]) = v.at(&[row, old_col]);
        }
    }
    (sorted_vals, sorted_vecs)
}

/// Truncated singular value decomposition.
///
/// For `a` of shape `[m, n]`, returns `(u, s, vt)` with `u: [m, r]`,
/// `s: [r]`, `vt: [r, n]` such that `a ≈ u · diag(s) · vt`, computed from
/// the eigendecomposition of the smaller Gram matrix.
pub fn truncated_svd(a: &Tensor, rank: usize) -> (Tensor, Vec<f32>, Tensor) {
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let r = rank.min(m).min(n).max(1);
    if n <= m {
        // Eigendecompose AᵀA (n×n): V holds right singular vectors.
        let gram = crate::matmul_at_b(a, a); // [n, n]
        let (vals, vecs) = jacobi_eigh(&gram, 30);
        let mut u = Tensor::zeros(&[m, r]);
        let mut s = vec![0.0f32; r];
        let mut vt = Tensor::zeros(&[r, n]);
        for k in 0..r {
            let sigma = vals[k].max(0.0).sqrt();
            s[k] = sigma;
            let vk: Vec<f32> = (0..n).map(|i| vecs.at(&[i, k])).collect();
            for (j, &vv) in vk.iter().enumerate() {
                *vt.at_mut(&[k, j]) = vv;
            }
            if sigma > 1e-8 {
                // u_k = A v_k / sigma
                for i in 0..m {
                    let mut acc = 0.0;
                    for (j, &vv) in vk.iter().enumerate() {
                        acc += a.at(&[i, j]) * vv;
                    }
                    *u.at_mut(&[i, k]) = acc / sigma;
                }
            }
        }
        (u, s, vt)
    } else {
        // Eigendecompose AAᵀ (m×m): U holds left singular vectors.
        let gram = crate::matmul_a_bt(a, a); // [m, m]
        let (vals, vecs) = jacobi_eigh(&gram, 30);
        let mut u = Tensor::zeros(&[m, r]);
        let mut s = vec![0.0f32; r];
        let mut vt = Tensor::zeros(&[r, n]);
        for k in 0..r {
            let sigma = vals[k].max(0.0).sqrt();
            s[k] = sigma;
            let uk: Vec<f32> = (0..m).map(|i| vecs.at(&[i, k])).collect();
            for (i, &uv) in uk.iter().enumerate() {
                *u.at_mut(&[i, k]) = uv;
            }
            if sigma > 1e-8 {
                // vt_k = ukᵀ A / sigma
                for j in 0..n {
                    let mut acc = 0.0;
                    for (i, &uv) in uk.iter().enumerate() {
                        acc += uv * a.at(&[i, j]);
                    }
                    *vt.at_mut(&[k, j]) = acc / sigma;
                }
            }
        }
        (u, s, vt)
    }
}

/// Best rank-`r` approximation factors of `a`.
///
/// Returns `(left, right)` with `left: [m, r]` (`U·diag(S)`) and
/// `right: [r, n]` (`Vᵀ`) so that `a ≈ left · right`. This is the shape the
/// low-rank conv replacement wants: `right` becomes the basis convolution,
/// `left` the pointwise mixing convolution.
pub fn low_rank_factors(a: &Tensor, rank: usize) -> (Tensor, Tensor) {
    let (u, s, vt) = truncated_svd(a, rank);
    let (m, r) = (u.dims()[0], u.dims()[1]);
    let mut left = Tensor::zeros(&[m, r]);
    for i in 0..m {
        for k in 0..r {
            *left.at_mut(&[i, k]) = u.at(&[i, k]) * s[k];
        }
    }
    (left, vt)
}

/// Relative Frobenius reconstruction error `‖a − b‖ / ‖a‖`.
pub fn relative_error(a: &Tensor, b: &Tensor) -> f32 {
    let denom = a.norm().max(1e-12);
    a.sub(b).norm() / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matmul, rng_from_seed};

    #[test]
    fn eigh_recovers_diagonal() {
        let d = Tensor::from_slice(&[3, 3], &[3., 0., 0., 0., 1., 0., 0., 0., 2.]);
        let (vals, _) = jacobi_eigh(&d, 20);
        assert!((vals[0] - 3.0).abs() < 1e-5);
        assert!((vals[1] - 2.0).abs() < 1e-5);
        assert!((vals[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn eigh_vectors_orthonormal() {
        let mut rng = rng_from_seed(12);
        let x = Tensor::randn(&[6, 6], 1.0, &mut rng);
        let sym = x.add(&x.transpose2()).scale(0.5);
        let (_, v) = jacobi_eigh(&sym, 30);
        let vtv = matmul(&v.transpose2(), &v);
        for i in 0..6 {
            for j in 0..6 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv.at(&[i, j]) - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn full_rank_svd_reconstructs() {
        let mut rng = rng_from_seed(13);
        let a = Tensor::randn(&[5, 8], 1.0, &mut rng);
        let (left, right) = low_rank_factors(&a, 5);
        let recon = matmul(&left, &right);
        assert!(relative_error(&a, &recon) < 1e-3, "{}", relative_error(&a, &recon));
    }

    #[test]
    fn full_rank_svd_reconstructs_tall() {
        let mut rng = rng_from_seed(14);
        let a = Tensor::randn(&[9, 4], 1.0, &mut rng);
        let (left, right) = low_rank_factors(&a, 4);
        let recon = matmul(&left, &right);
        assert!(relative_error(&a, &recon) < 1e-3);
    }

    #[test]
    fn truncation_error_decreases_with_rank() {
        let mut rng = rng_from_seed(15);
        // Build a matrix with decaying spectrum.
        let u = Tensor::randn(&[10, 10], 1.0, &mut rng);
        let v = Tensor::randn(&[10, 10], 1.0, &mut rng);
        let mut core = Tensor::zeros(&[10, 10]);
        for i in 0..10 {
            *core.at_mut(&[i, i]) = 1.0 / (1 + i * i) as f32;
        }
        let a = matmul(&matmul(&u, &core), &v);
        let mut prev = f32::INFINITY;
        for r in [1usize, 3, 6, 10] {
            let (l, rt) = low_rank_factors(&a, r);
            let err = relative_error(&a, &matmul(&l, &rt));
            assert!(err <= prev + 1e-4, "rank {r}: {err} > {prev}");
            prev = err;
        }
        assert!(prev < 0.05);
    }

    #[test]
    fn rank_one_matrix_exact_at_rank_one() {
        let mut rng = rng_from_seed(16);
        let u = Tensor::randn(&[7, 1], 1.0, &mut rng);
        let v = Tensor::randn(&[1, 5], 1.0, &mut rng);
        let a = matmul(&u, &v);
        let (l, rt) = low_rank_factors(&a, 1);
        assert!(relative_error(&a, &matmul(&l, &rt)) < 1e-3);
    }
}
