//! Optimizers: SGD with momentum / weight decay, and Adam.
//!
//! Optimizer state is keyed by parameter *position* in the slice handed to
//! [`Optimizer::step`]. Training code constructs a fresh optimizer per
//! training run; if a network is structurally edited (pruned, decomposed)
//! between runs, shapes change and the lazily-initialised state simply
//! re-initialises — the state check below makes that safe.

use crate::Tensor;

/// A mutable view of one parameter tensor and its accumulated gradient.
pub struct Param<'a> {
    /// Parameter values, updated in place by the optimizer.
    pub value: &'a mut Tensor,
    /// Accumulated gradient; zeroed by the optimizer after each step.
    pub grad: &'a mut Tensor,
    /// Whether weight decay applies (true for weights, false for BN/bias).
    pub weight_decay: bool,
}

/// Common optimizer interface.
pub trait Optimizer {
    /// Apply one update step and clear the gradients.
    fn step(&mut self, params: &mut [Param<'_>]);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Override the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Configuration for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay applied to parameters flagged `weight_decay`.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 5e-4 }
    }
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    cfg: SgdConfig,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Create from a config.
    pub fn new(cfg: SgdConfig) -> Self {
        Sgd { cfg, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Param<'_>]) {
        if self.velocity.len() < params.len() {
            self.velocity
                .resize_with(params.len(), || Tensor::zeros(&[0]));
        }
        for (i, p) in params.iter_mut().enumerate() {
            if p.weight_decay && self.cfg.weight_decay != 0.0 {
                p.grad.axpy(self.cfg.weight_decay, p.value);
            }
            let v = &mut self.velocity[i];
            if v.dims() != p.value.dims() {
                *v = Tensor::zeros(p.value.dims());
            }
            if self.cfg.momentum != 0.0 {
                v.scale_assign(self.cfg.momentum);
                v.add_assign(p.grad);
                p.value.axpy(-self.cfg.lr, v);
            } else {
                p.value.axpy(-self.cfg.lr, p.grad);
            }
            p.grad.zero();
        }
    }

    fn lr(&self) -> f32 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

/// Configuration for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// L2 weight decay applied to parameters flagged `weight_decay`.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        // lr = 0.001 matches the paper's setting for NN_exp / F_mo training.
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// The Adam optimizer (Kingma & Ba).
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

/// Journaled Adam moment state, exported by [`Adam::export_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// First-moment estimates, keyed by parameter position.
    pub m: Vec<Tensor>,
    /// Second-moment estimates, keyed by parameter position.
    pub v: Vec<Tensor>,
    /// Completed step count (drives bias correction).
    pub t: u64,
}

impl Adam {
    /// Create from a config.
    pub fn new(cfg: AdamConfig) -> Self {
        Adam { cfg, m: Vec::new(), v: Vec::new(), t: 0 }
    }

    /// Snapshot the moment estimates and step count for journaling.
    pub fn export_state(&self) -> AdamState {
        AdamState { m: self.m.clone(), v: self.v.clone(), t: self.t }
    }

    /// Restore a [`Adam::export_state`] snapshot; subsequent steps continue
    /// exactly where the snapshotted optimizer left off.
    pub fn import_state(&mut self, state: AdamState) {
        self.m = state.m;
        self.v = state.v;
        self.t = state.t;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Param<'_>]) {
        if self.m.len() < params.len() {
            self.m.resize_with(params.len(), || Tensor::zeros(&[0]));
            self.v.resize_with(params.len(), || Tensor::zeros(&[0]));
        }
        self.t += 1;
        let bc1 = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            if p.weight_decay && self.cfg.weight_decay != 0.0 {
                p.grad.axpy(self.cfg.weight_decay, p.value);
            }
            if self.m[i].dims() != p.value.dims() {
                self.m[i] = Tensor::zeros(p.value.dims());
                self.v[i] = Tensor::zeros(p.value.dims());
            }
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for ((mv, vv), &g) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(p.grad.data().iter())
            {
                *mv = self.cfg.beta1 * *mv + (1.0 - self.cfg.beta1) * g;
                *vv = self.cfg.beta2 * *vv + (1.0 - self.cfg.beta2) * g * g;
            }
            let lr = self.cfg.lr;
            let eps = self.cfg.eps;
            for ((w, &mv), &vv) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(m.data())
                .zip(v.data())
            {
                let m_hat = mv / bc1;
                let v_hat = vv / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            p.grad.zero();
        }
    }

    fn lr(&self) -> f32 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(w) = ‖w − target‖² with each optimizer.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let target = Tensor::from_slice(&[4], &[1.0, -2.0, 0.5, 3.0]);
        let mut w = Tensor::zeros(&[4]);
        let mut g = Tensor::zeros(&[4]);
        for _ in 0..steps {
            let diff = w.sub(&target);
            g.zero();
            g.axpy(2.0, &diff);
            let mut params = [Param { value: &mut w, grad: &mut g, weight_decay: false }];
            opt.step(&mut params);
        }
        w.sub(&target).norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0 });
        assert!(quadratic_descent(&mut sgd, 200) < 1e-3);
    }

    #[test]
    fn sgd_without_momentum_converges() {
        let mut sgd = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.0 });
        assert!(quadratic_descent(&mut sgd, 200) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(AdamConfig { lr: 0.1, ..AdamConfig::default() });
        assert!(quadratic_descent(&mut adam, 300) < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut sgd = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.5 });
        let mut w = Tensor::ones(&[3]);
        let mut g = Tensor::zeros(&[3]);
        for _ in 0..10 {
            g.zero();
            let mut params = [Param { value: &mut w, grad: &mut g, weight_decay: true }];
            sgd.step(&mut params);
        }
        // Pure decay: w ← w(1 − lr·wd) each step.
        let expect = (1.0f32 - 0.05).powi(10);
        for &v in w.data() {
            assert!((v - expect).abs() < 1e-4, "{v} vs {expect}");
        }
    }

    #[test]
    fn grads_cleared_after_step() {
        let mut sgd = Sgd::new(SgdConfig::default());
        let mut w = Tensor::ones(&[2]);
        let mut g = Tensor::ones(&[2]);
        let mut params = [Param { value: &mut w, grad: &mut g, weight_decay: false }];
        sgd.step(&mut params);
        assert_eq!(g.data(), &[0.0, 0.0]);
    }

    #[test]
    fn state_reinitialises_on_shape_change() {
        let mut sgd = Sgd::new(SgdConfig::default());
        let mut w = Tensor::ones(&[4]);
        let mut g = Tensor::ones(&[4]);
        {
            let mut params = [Param { value: &mut w, grad: &mut g, weight_decay: false }];
            sgd.step(&mut params);
        }
        // Simulate pruning: the parameter shrinks.
        let mut w2 = Tensor::ones(&[2]);
        let mut g2 = Tensor::ones(&[2]);
        let mut params = [Param { value: &mut w2, grad: &mut g2, weight_decay: false }];
        sgd.step(&mut params); // must not panic
        assert_eq!(w2.dims(), &[2]);
    }

    #[test]
    fn adam_state_roundtrip_resumes_identically() {
        let target = Tensor::from_slice(&[4], &[1.0, -2.0, 0.5, 3.0]);
        let descend = |opt: &mut Adam, w: &mut Tensor, steps: usize| {
            let mut g = Tensor::zeros(&[4]);
            for _ in 0..steps {
                let diff = w.sub(&target);
                g.zero();
                g.axpy(2.0, &diff);
                let mut params = [Param { value: w, grad: &mut g, weight_decay: false }];
                opt.step(&mut params);
            }
        };
        let cfg = AdamConfig { lr: 0.1, ..AdamConfig::default() };
        let mut straight = Adam::new(cfg);
        let mut w_straight = Tensor::zeros(&[4]);
        descend(&mut straight, &mut w_straight, 40);

        let mut first = Adam::new(cfg);
        let mut w_resumed = Tensor::zeros(&[4]);
        descend(&mut first, &mut w_resumed, 25);
        let mut resumed = Adam::new(cfg);
        resumed.import_state(first.export_state());
        descend(&mut resumed, &mut w_resumed, 15);

        for (a, b) in w_straight.data().iter().zip(w_resumed.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "resume must be bitwise identical");
        }
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut sgd = Sgd::new(SgdConfig { lr: 1.0, momentum: 0.0, weight_decay: 0.0 });
        sgd.set_lr(0.0);
        let mut w = Tensor::ones(&[1]);
        let mut g = Tensor::ones(&[1]);
        let mut params = [Param { value: &mut w, grad: &mut g, weight_decay: false }];
        sgd.step(&mut params);
        assert_eq!(w.data(), &[1.0]);
    }
}
