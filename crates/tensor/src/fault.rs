//! Deterministic fault injection for the recovery paths.
//!
//! Long compression searches are dominated by fallible candidate
//! evaluations; the workspace hardens every one of them (panic isolation,
//! NaN bail-out, checksummed caches, round journals). Those recovery
//! paths are worthless if they are only exercised when something breaks
//! by accident, so this module lets tests and the CI smoke stage schedule
//! faults at *exact, reproducible* points:
//!
//! ```text
//! AUTOMC_FAULTS=panic@eval:7,nan@train:12,corrupt@cache:3
//! ```
//!
//! Each clause is `kind@site:ordinal`. A *site* is a named probe placed
//! in the code (`fault::tick("eval")` at the top of every candidate
//! evaluation, `"train"` at the start of every training run, `"cache"`
//! before every cache write). The probe increments a per-site counter and
//! reports the fault kind scheduled for that ordinal, if any — counting
//! from 1, so `panic@eval:7` fires on the seventh evaluation.
//!
//! The plan and its counters are **thread-local**. Injected faults must
//! never leak between concurrently running tests (cargo's test harness
//! shares one process), and a deterministic per-thread count is only
//! meaningful when the probes themselves run on a known thread — fault
//! tests therefore pin the worker pool with `par::with_threads(1)`, and
//! the CI smoke stage runs with `AUTOMC_THREADS=1`. A thread with no
//! installed plan falls back to parsing `AUTOMC_FAULTS` from the
//! environment once, on first probe.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// What to break at a fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind with a recognisable payload (exercises `catch_unwind` paths).
    Panic,
    /// Poison a training loss with NaN (exercises divergence bail-out).
    Nan,
    /// Corrupt bytes about to be persisted (exercises checksum rejection).
    Corrupt,
    /// Terminate the process on the spot (exercises checkpoint/resume: a
    /// `catch_unwind` cannot catch this — it simulates a `kill -9` at a
    /// probed point). Handled inside [`tick`] itself.
    Exit,
    /// Crash a *worker process* (exercises the orchestrator's crash
    /// detection and restart path). Unlike [`FaultKind::Exit`], the tick
    /// fires in the supervisor — at the `worker` site, once per spawn —
    /// and the supervisor translates it into a directive for the child,
    /// which aborts after its first completed shard task.
    Kill,
    /// Hang a *worker process*: the child stops emitting heartbeats and
    /// parks forever, so only the supervisor's heartbeat deadline can
    /// reclaim it. Ticked at the `worker` site like [`FaultKind::Kill`].
    Hang,
    /// Tear a blob-store publish: a truncated envelope lands on the final
    /// path, as if a pre-protocol writer crashed mid-write (exercises the
    /// store's quarantine-and-heal path). Honoured at the `spill` site by
    /// publishes only; a read visiting the scheduled ordinal is a no-op.
    Torn,
    /// Delete a blob between a reader's lookup and its read, as if a
    /// sibling process's GC won the race (exercises the clean-miss path).
    /// Honoured at the `spill` site by reads of existing blobs only.
    Evict,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "nan" => Some(FaultKind::Nan),
            "corrupt" => Some(FaultKind::Corrupt),
            "exit" => Some(FaultKind::Exit),
            "kill" => Some(FaultKind::Kill),
            "hang" => Some(FaultKind::Hang),
            "torn" => Some(FaultKind::Torn),
            "evict" => Some(FaultKind::Evict),
            _ => None,
        }
    }
}

/// A schedule of faults: `(site, ordinal) -> kind`, ordinals counted per
/// site from 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    scheduled: HashMap<(String, u64), FaultKind>,
}

impl FaultPlan {
    /// Parse a comma-separated `kind@site:ordinal` spec. Malformed clauses
    /// are reported in `Err`; an empty spec is an empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind_s, rest) = clause
                .split_once('@')
                .ok_or_else(|| format!("fault clause `{clause}`: expected kind@site:ordinal"))?;
            let (site, ord_s) = rest
                .split_once(':')
                .ok_or_else(|| format!("fault clause `{clause}`: expected kind@site:ordinal"))?;
            let kind = FaultKind::parse(kind_s)
                .ok_or_else(|| format!("fault clause `{clause}`: unknown kind `{kind_s}`"))?;
            let ordinal: u64 = ord_s
                .parse()
                .map_err(|_| format!("fault clause `{clause}`: bad ordinal `{ord_s}`"))?;
            if ordinal == 0 {
                return Err(format!("fault clause `{clause}`: ordinals count from 1"));
            }
            plan.scheduled.insert((site.to_string(), ordinal), kind);
        }
        Ok(plan)
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty()
    }

    /// True if any fault is scheduled at `site` (any ordinal).
    pub fn schedules_site(&self, site: &str) -> bool {
        self.scheduled.keys().any(|(s, _)| s == site)
    }
}

struct FaultState {
    plan: FaultPlan,
    counters: HashMap<String, u64>,
}

thread_local! {
    static STATE: RefCell<Option<FaultState>> = const { RefCell::new(None) };
}

fn env_plan() -> FaultPlan {
    match std::env::var("AUTOMC_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => match FaultPlan::parse(&spec) {
            Ok(plan) => {
                eprintln!("[fault] AUTOMC_FAULTS installed: {spec}");
                plan
            }
            Err(e) => {
                eprintln!("warning: ignoring AUTOMC_FAULTS: {e}");
                FaultPlan::default()
            }
        },
        _ => FaultPlan::default(),
    }
}

/// Install `plan` on the current thread, resetting all site counters.
pub fn install(plan: FaultPlan) {
    STATE.with(|s| {
        *s.borrow_mut() = Some(FaultState {
            plan,
            counters: HashMap::new(),
        });
    });
}

/// Remove the current thread's plan and counters. The next probe
/// re-reads `AUTOMC_FAULTS`; tests that called [`install`] should call
/// this on the way out.
pub fn clear() {
    STATE.with(|s| *s.borrow_mut() = None);
}

/// The process exit code used by [`FaultKind::Exit`] injections, so a
/// harness can tell a simulated kill from a genuine failure.
pub const INJECTED_EXIT_CODE: i32 = 87;

/// True when the current thread has a non-empty fault plan (installed or
/// inherited from `AUTOMC_FAULTS`). Subsystems whose correctness depends
/// on exact per-site tick ordinals — like the prefix-model memo cache,
/// which would otherwise skip `train` ticks on cache hits — consult this
/// to become pass-through while faults are scheduled.
pub fn plan_active() -> bool {
    STATE.with(|s| {
        let mut state = s.borrow_mut();
        let state = state.get_or_insert_with(|| FaultState {
            plan: env_plan(),
            counters: HashMap::new(),
        });
        !state.plan.is_empty()
    })
}

/// True when the current thread's fault plan schedules a fault at any of
/// `sites`. The memo cache uses this instead of [`plan_active`]: it must
/// become pass-through only when the plan targets the evaluation pipeline
/// itself (`eval`/`train` ordinals shift on cache hits), not when the
/// plan targets the store the memo spills through — disabling the memo
/// under `torn@spill` would leave the very code the fault exercises
/// unreachable.
pub fn plan_schedules_any(sites: &[&str]) -> bool {
    STATE.with(|s| {
        let mut state = s.borrow_mut();
        let state = state.get_or_insert_with(|| FaultState {
            plan: env_plan(),
            counters: HashMap::new(),
        });
        sites.iter().any(|site| state.plan.schedules_site(site))
    })
}

/// Process-wide count of `eval`-site probes, independent of any fault
/// plan and shared across threads: a cheap liveness/progress signal. The
/// orchestrator's heartbeat emitter reports it so a supervisor can see
/// *which* evaluation a worker is on, not merely that it is alive.
static EVAL_ORDINAL: AtomicU64 = AtomicU64::new(0);

/// Total `fault::tick("eval")` probes this process has executed — the
/// number of supervised evaluations started, counted even when no fault
/// plan is installed.
pub fn eval_ordinal() -> u64 {
    EVAL_ORDINAL.load(Ordering::Relaxed)
}

/// Probe a fault site: bump its per-thread counter and return the fault
/// scheduled for this visit, if any. Call exactly once per guarded
/// operation.
///
/// A scheduled [`FaultKind::Exit`] never returns: the process terminates
/// immediately (exit code [`INJECTED_EXIT_CODE`]), simulating a hard kill
/// that no `catch_unwind` can absorb — only a checkpoint survives it.
pub fn tick(site: &str) -> Option<FaultKind> {
    if site == "eval" {
        EVAL_ORDINAL.fetch_add(1, Ordering::Relaxed);
    }
    let hit = STATE.with(|s| {
        let mut state = s.borrow_mut();
        let state = state.get_or_insert_with(|| FaultState {
            plan: env_plan(),
            counters: HashMap::new(),
        });
        if state.plan.is_empty() {
            return None;
        }
        let n = state.counters.entry(site.to_string()).or_insert(0);
        *n += 1;
        let hit = state.plan.scheduled.get(&(site.to_string(), *n)).copied();
        if let Some(kind) = hit {
            eprintln!("[fault] injecting {kind:?} at {site}:{n}");
        }
        hit
    });
    if hit == Some(FaultKind::Exit) {
        eprintln!("[fault] simulated kill (exit {INJECTED_EXIT_CODE})");
        std::process::exit(INJECTED_EXIT_CODE);
    }
    hit
}

/// Snapshot the current thread's per-site fault counters, sorted by site
/// name, for journaling. With no plan installed (and none in the
/// environment) no site ever counts, so this is empty — journals written
/// outside fault-injection runs carry no counter state.
pub fn counters() -> Vec<(String, u64)> {
    STATE.with(|s| {
        let state = s.borrow();
        let mut out: Vec<(String, u64)> = state
            .as_ref()
            .map(|st| st.counters.iter().map(|(k, &v)| (k.clone(), v)).collect())
            .unwrap_or_default();
        out.sort();
        out
    })
}

/// Restore journaled per-site counters into the current thread's fault
/// state, so a resumed run composes with an active fault plan: sites
/// continue counting where the checkpointed run left off and each planned
/// fault fires exactly once across the kill/resume boundary. The plan
/// itself is not journaled — it comes from [`install`] or `AUTOMC_FAULTS`
/// as usual; restoring counters with no plan active is a no-op in effect.
pub fn restore_counters(saved: &[(String, u64)]) {
    if saved.is_empty() {
        return;
    }
    STATE.with(|s| {
        let mut state = s.borrow_mut();
        let state = state.get_or_insert_with(|| FaultState {
            plan: env_plan(),
            counters: HashMap::new(),
        });
        for (site, n) in saved {
            let slot = state.counters.entry(site.clone()).or_insert(0);
            *slot = (*slot).max(*n);
        }
    });
}

/// The message used by [`FaultKind::Panic`] injections, recognisable in
/// recovered panic payloads.
pub const INJECTED_PANIC_MSG: &str = "injected fault: panic";

/// Best-effort extraction of a recovered panic payload's message.
/// `panic!` produces `&str` or `String` payloads; anything else is
/// summarised by a placeholder rather than lost.
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Unwind if a panic fault is scheduled at this visit to `site`.
/// Convenience wrapper for sites that only care about `Panic`.
pub fn maybe_panic(site: &str) {
    if tick(site) == Some(FaultKind::Panic) {
        panic!("{INJECTED_PANIC_MSG} at {site}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse("panic@eval:7, nan@train:12,corrupt@cache:3").unwrap();
        assert_eq!(
            plan.scheduled.get(&("eval".into(), 7)),
            Some(&FaultKind::Panic)
        );
        assert_eq!(
            plan.scheduled.get(&("train".into(), 12)),
            Some(&FaultKind::Nan)
        );
        assert_eq!(
            plan.scheduled.get(&("cache".into(), 3)),
            Some(&FaultKind::Corrupt)
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ").unwrap().is_empty());
    }

    #[test]
    fn parse_worker_fault_kinds() {
        let plan = FaultPlan::parse("kill@worker:2,hang@worker:3").unwrap();
        assert_eq!(
            plan.scheduled.get(&("worker".into(), 2)),
            Some(&FaultKind::Kill)
        );
        assert_eq!(
            plan.scheduled.get(&("worker".into(), 3)),
            Some(&FaultKind::Hang)
        );
    }

    #[test]
    fn eval_ordinal_counts_eval_ticks_without_a_plan() {
        clear();
        let before = eval_ordinal();
        tick("eval");
        tick("eval");
        // The counter is process-global and other tests may tick
        // concurrently, so assert monotonicity, not an exact delta.
        assert!(eval_ordinal() >= before + 2);
    }

    #[test]
    fn parse_store_fault_kinds_and_site_queries() {
        let plan = FaultPlan::parse("torn@spill:1,evict@spill:4,corrupt@index:2").unwrap();
        assert_eq!(
            plan.scheduled.get(&("spill".into(), 1)),
            Some(&FaultKind::Torn)
        );
        assert_eq!(
            plan.scheduled.get(&("spill".into(), 4)),
            Some(&FaultKind::Evict)
        );
        assert_eq!(
            plan.scheduled.get(&("index".into(), 2)),
            Some(&FaultKind::Corrupt)
        );
        assert!(plan.schedules_site("spill"));
        assert!(plan.schedules_site("index"));
        assert!(!plan.schedules_site("eval"));

        install(plan);
        assert!(plan_schedules_any(&["spill"]));
        assert!(plan_schedules_any(&["eval", "index"]));
        assert!(!plan_schedules_any(&["eval", "train"]));
        clear();
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        assert!(FaultPlan::parse("panic@eval").is_err());
        assert!(FaultPlan::parse("panic:7").is_err());
        assert!(FaultPlan::parse("explode@eval:7").is_err());
        assert!(FaultPlan::parse("panic@eval:zero").is_err());
        assert!(FaultPlan::parse("panic@eval:0").is_err(), "ordinals from 1");
    }

    #[test]
    fn tick_fires_at_the_scheduled_ordinal_only() {
        install(FaultPlan::parse("nan@train:3,panic@eval:1").unwrap());
        assert_eq!(tick("eval"), Some(FaultKind::Panic));
        assert_eq!(tick("eval"), None);
        assert_eq!(tick("train"), None);
        assert_eq!(tick("train"), None);
        assert_eq!(tick("train"), Some(FaultKind::Nan));
        assert_eq!(tick("train"), None);
        clear();
    }

    #[test]
    fn install_resets_counters_and_empty_plan_is_inert() {
        install(FaultPlan::parse("panic@eval:2").unwrap());
        assert_eq!(tick("eval"), None);
        install(FaultPlan::parse("panic@eval:2").unwrap());
        assert_eq!(tick("eval"), None);
        assert_eq!(tick("eval"), Some(FaultKind::Panic));
        install(FaultPlan::default());
        for _ in 0..10 {
            assert_eq!(tick("eval"), None);
        }
        clear();
    }

    #[test]
    fn counters_snapshot_and_restore_compose_across_a_restart() {
        install(FaultPlan::parse("panic@eval:3").unwrap());
        assert_eq!(tick("eval"), None);
        assert_eq!(tick("eval"), None);
        let saved = counters();
        assert_eq!(saved, vec![("eval".to_string(), 2)]);
        // Simulated process restart: a fresh install starts from zero…
        install(FaultPlan::parse("panic@eval:3").unwrap());
        assert!(counters().is_empty());
        // …until the journaled counters are restored, after which the
        // planned fault fires exactly once overall, not once per restart.
        restore_counters(&saved);
        assert_eq!(tick("eval"), Some(FaultKind::Panic));
        assert_eq!(tick("eval"), None);
        // Restoring stale counters never rewinds a site that is ahead.
        restore_counters(&saved);
        assert_eq!(counters(), vec![("eval".to_string(), 4)]);
        // Restoring an empty snapshot is a no-op.
        restore_counters(&[]);
        assert_eq!(counters(), vec![("eval".to_string(), 4)]);
        clear();
    }

    #[test]
    fn maybe_panic_unwinds_with_recognisable_payload() {
        install(FaultPlan::parse("panic@site:1").unwrap());
        let err = std::panic::catch_unwind(|| maybe_panic("site")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains(INJECTED_PANIC_MSG), "{msg}");
        clear();
    }
}
