use std::fmt;

/// Errors produced by fallible tensor operations.
///
/// Hot-path kernels use `debug_assert!` internally; the fallible API surface
/// (`Tensor::try_*`) is for boundaries where shapes arrive from user input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Left-hand / first operand dims.
        lhs: Vec<usize>,
        /// Right-hand / second operand dims.
        rhs: Vec<usize>,
    },
    /// The data length does not match the product of the dims.
    LengthMismatch {
        /// Expected element count (product of dims).
        expected: usize,
        /// Actual data length supplied.
        actual: usize,
    },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// Requested axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match shape volume {expected}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
