//! Loss functions.
//!
//! Each loss returns `(scalar_loss, grad_wrt_logits)` with the gradient
//! already averaged over the batch, ready to feed into `Layer::backward`.

use crate::Tensor;

/// Numerically-stable row-wise softmax.
pub fn softmax(logits: &Tensor) -> Tensor {
    let mut out = logits.clone();
    let n = out.rows();
    for i in 0..n {
        let row = out.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum.max(1e-12);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Softmax cross-entropy against integer class labels.
///
/// `logits: [batch, classes]`, `labels.len() == batch`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let batch = logits.rows();
    debug_assert_eq!(labels.len(), batch, "label count must match batch");
    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    let inv_b = 1.0 / batch.max(1) as f32;
    for (i, &label) in labels.iter().enumerate() {
        let p = probs.row(i)[label].max(1e-12);
        loss -= p.ln();
        let grow = grad.row_mut(i);
        grow[label] -= 1.0;
        for v in grow.iter_mut() {
            *v *= inv_b;
        }
    }
    (loss * inv_b, grad)
}

/// Negative log-likelihood on *probabilities* (row-stochastic input).
///
/// Used as LFB's `NLL` auxiliary-loss option where the inputs have already
/// been normalised. Gradient is wrt the probabilities.
pub fn nll(probs: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let batch = probs.rows();
    debug_assert_eq!(labels.len(), batch);
    let mut grad = Tensor::zeros(probs.dims());
    let mut loss = 0.0f32;
    let inv_b = 1.0 / batch.max(1) as f32;
    for (i, &label) in labels.iter().enumerate() {
        let p = probs.row(i)[label].max(1e-6);
        loss -= p.ln();
        grad.row_mut(i)[label] = -inv_b / p;
    }
    (loss * inv_b, grad)
}

/// Mean squared error between predictions and targets (same shape).
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    debug_assert_eq!(pred.dims(), target.dims(), "mse: shape mismatch");
    let n = pred.numel().max(1) as f32;
    let diff = pred.sub(target);
    let loss = diff.sq_norm() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Knowledge-distillation loss (Hinton et al.): temperature-scaled KL
/// divergence from the student's softened distribution to the teacher's.
///
/// Returns `(loss, grad_wrt_student_logits)`. The conventional `T²` factor
/// is applied so gradient magnitudes stay comparable across temperatures.
pub fn distillation_kl(
    student_logits: &Tensor,
    teacher_logits: &Tensor,
    temperature: f32,
) -> (f32, Tensor) {
    debug_assert_eq!(student_logits.dims(), teacher_logits.dims());
    let t = temperature.max(1e-3);
    let ps = softmax(&student_logits.scale(1.0 / t));
    let pt = softmax(&teacher_logits.scale(1.0 / t));
    let batch = student_logits.rows().max(1) as f32;
    // KL(pt ‖ ps) = Σ pt (ln pt − ln ps); grad wrt student logits is
    // (ps − pt) / T, then × T² = (ps − pt) · T.
    let mut loss = 0.0f32;
    for i in 0..student_logits.rows() {
        for (&a, &b) in pt.row(i).iter().zip(ps.row(i)) {
            if a > 1e-12 {
                loss += a * (a.ln() - b.max(1e-12).ln());
            }
        }
    }
    loss = loss * t * t / batch;
    let grad = ps.sub(&pt).scale(t / batch);
    (loss, grad)
}

/// Composite distillation objective:
/// `alpha · KD(student, teacher; T) + (1 − alpha) · CE(student, labels)`.
pub fn distillation_composite(
    student_logits: &Tensor,
    teacher_logits: &Tensor,
    labels: &[usize],
    temperature: f32,
    alpha: f32,
) -> (f32, Tensor) {
    let (kd_loss, kd_grad) = distillation_kl(student_logits, teacher_logits, temperature);
    let (ce_loss, ce_grad) = softmax_cross_entropy(student_logits, labels);
    let loss = alpha * kd_loss + (1.0 - alpha) * ce_loss;
    let mut grad = kd_grad.scale(alpha);
    grad.axpy(1.0 - alpha, &ce_grad);
    (loss, grad)
}

/// Classification accuracy of logits against labels, in `[0, 1]`.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let batch = logits.rows();
    if batch == 0 {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|&(i, &label)| logits.argmax_row(i) == label)
        .count();
    correct as f32 / batch as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = rng_from_seed(20);
        let x = Tensor::randn(&[4, 7], 3.0, &mut rng);
        let p = softmax(&x);
        for i in 0..4 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_slice(&[1, 3], &[1., 2., 3.]);
        let y = x.map(|v| v + 100.0);
        let px = softmax(&x);
        let py = softmax(&y);
        for (a, b) in px.data().iter().zip(py.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn ce_of_perfect_prediction_is_small() {
        let logits = Tensor::from_slice(&[2, 3], &[20., 0., 0., 0., 20., 0.]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn ce_uniform_is_log_classes() {
        let logits = Tensor::zeros(&[1, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let mut rng = rng_from_seed(21);
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let labels = [1usize, 4, 0];
        let (_, grad) = softmax_cross_entropy(&x, &labels);
        let eps = 1e-3;
        for idx in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let (lp, _) = softmax_cross_entropy(&xp, &labels);
            let (lm, _) = softmax_cross_entropy(&xm, &labels);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.data()[idx]).abs() < 1e-2,
                "idx {idx}: fd {fd} vs grad {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let mut rng = rng_from_seed(22);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let t = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let (_, grad) = mse(&x, &t);
        let eps = 1e-3;
        for idx in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let (lp, _) = mse(&xp, &t);
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let (lm, _) = mse(&xm, &t);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - grad.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn kd_loss_zero_when_student_equals_teacher() {
        let mut rng = rng_from_seed(23);
        let x = Tensor::randn(&[3, 6], 1.0, &mut rng);
        let (loss, grad) = distillation_kl(&x, &x, 3.0);
        assert!(loss.abs() < 1e-5);
        assert!(grad.norm() < 1e-5);
    }

    #[test]
    fn kd_gradient_matches_finite_difference() {
        let mut rng = rng_from_seed(24);
        let s = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let t = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let (_, grad) = distillation_kl(&s, &t, 2.0);
        let eps = 1e-3;
        for idx in 0..s.numel() {
            let mut sp = s.clone();
            sp.data_mut()[idx] += eps;
            let (lp, _) = distillation_kl(&sp, &t, 2.0);
            let mut sm = s.clone();
            sm.data_mut()[idx] -= eps;
            let (lm, _) = distillation_kl(&sm, &t, 2.0);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.data()[idx]).abs() < 2e-2,
                "idx {idx}: fd {fd} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn composite_interpolates_between_losses() {
        let mut rng = rng_from_seed(25);
        let s = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let t = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let labels = [0usize, 2];
        let (kd, _) = distillation_kl(&s, &t, 2.0);
        let (ce, _) = softmax_cross_entropy(&s, &labels);
        let (zero_alpha, _) = distillation_composite(&s, &t, &labels, 2.0, 0.0);
        let (one_alpha, _) = distillation_composite(&s, &t, &labels, 2.0, 1.0);
        assert!((zero_alpha - ce).abs() < 1e-5);
        assert!((one_alpha - kd).abs() < 1e-5);
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_slice(&[2, 2], &[1., 0., 0., 1.]);
        assert!((accuracy(&logits, &[0, 1]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 1]) - 0.5).abs() < 1e-6);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 2]), &[]), 0.0);
    }
}
