//! Weight initialisation schemes.

use crate::{Rng, Tensor};

/// Kaiming/He normal initialisation for a weight with `fan_in` inputs.
///
/// Standard for ReLU networks: `std = sqrt(2 / fan_in)`.
pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(dims, std, rng)
}

/// Xavier/Glorot uniform initialisation.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::uniform(dims, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = rng_from_seed(10);
        let w = kaiming_normal(&[10_000], 50, &mut rng);
        let std = (w.sq_norm() / w.numel() as f32).sqrt();
        let expect = (2.0f32 / 50.0).sqrt();
        assert!((std - expect).abs() < 0.02, "std {std} expect {expect}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = rng_from_seed(11);
        let w = xavier_uniform(&[1000], 10, 10, &mut rng);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= bound));
    }
}
